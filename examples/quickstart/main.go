// Quickstart: route one net across a die with an IP macro in the way,
// under a 400 ps clock, and print what the router decided.
package main

import (
	"fmt"
	"log"

	"clockroute"
)

func main() {
	// A 20×5 mm routing region at 0.5 mm pitch.
	g := clockroute.NewGrid(41, 11, 0.5)

	// A hard IP macro covers the middle of the straight path: wires may
	// cross it on upper metal, but no buffer or register fits there.
	g.AddObstacle(clockroute.R(12, 2, 28, 9))

	tech := clockroute.DefaultTech() // calibrated 0.07 µm parameters

	prob, err := clockroute.NewProblem(g, tech, clockroute.Pt(0, 5), clockroute.Pt(40, 5))
	if err != nil {
		log.Fatal(err)
	}

	// First ask for the unclocked optimum (how fast could the wire be?).
	fp, err := clockroute.FastPath(prob, clockroute.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fast path: %.0f ps with %d buffers over %d grid edges\n",
		fp.Latency, fp.Buffers, fp.Path.Len())

	// Then route it for a 400 ps clock: the signal needs multiple cycles,
	// so RBP inserts registers — never on the macro.
	const T = 400
	res, err := clockroute.RBP(prob, T, clockroute.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RBP @ %d ps: latency %.0f ps = %d cycles, %d registers, %d buffers\n",
		T, res.Latency, res.Registers+1, res.Registers, res.Buffers)
	fmt.Printf("labeling: %v\n", res.Path)

	// Always re-verify with the independent checker before trusting a plan.
	lat, err := clockroute.VerifySingleClock(res.Path, g, tech, T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("independently verified: latency %.0f ps\n", lat)

	for i, n := range res.Path.Nodes {
		if res.Path.Gates[i].IsClocked() && i > 0 && i < len(res.Path.Nodes)-1 {
			fmt.Printf("  register at %v\n", g.At(n))
		}
	}
}
