package clockroute_test

import (
	"context"
	"fmt"

	"clockroute"
)

// ExampleRBP routes a 10 mm net under a 400 ps clock.
func ExampleRBP() {
	g := clockroute.NewGrid(21, 3, 0.5)
	tech := clockroute.DefaultTech()
	prob, err := clockroute.NewProblem(g, tech, clockroute.Pt(0, 1), clockroute.Pt(20, 1))
	if err != nil {
		panic(err)
	}
	res, err := clockroute.RBP(prob, 400, clockroute.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("latency %.0f ps with %d registers\n", res.Latency, res.Registers)
	// Output:
	// latency 800 ps with 1 registers
}

// ExampleGALS routes between a 300 ps domain and a 250 ps domain.
func ExampleGALS() {
	g := clockroute.NewGrid(21, 3, 0.5)
	tech := clockroute.DefaultTech()
	prob, err := clockroute.NewProblem(g, tech, clockroute.Pt(0, 1), clockroute.Pt(20, 1))
	if err != nil {
		panic(err)
	}
	res, err := clockroute.GALS(prob, 300, 250, clockroute.Options{})
	if err != nil {
		panic(err)
	}
	regS, regT := res.Path.RegistersBySide()
	fmt.Printf("latency %.0f ps; %d+1 sync elements (%d source side, %d sink side)\n",
		res.Latency, regS+regT, regS, regT)
	// Output:
	// latency 800 ps; 1+1 sync elements (0 source side, 1 sink side)
}

// ExampleLatchRoute shows the transparent-latch extension on the same net.
func ExampleLatchRoute() {
	g := clockroute.NewGrid(21, 3, 0.5)
	tech := clockroute.DefaultTech()
	prob, err := clockroute.NewProblem(g, tech, clockroute.Pt(0, 1), clockroute.Pt(20, 1))
	if err != nil {
		panic(err)
	}
	res, err := clockroute.LatchRoute(prob, 400, 0, clockroute.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("latency %.0f ps with %d latches\n", res.LatencyPS, res.Latches)
	// Output:
	// latency 800 ps with 1 latches
}

// ExampleVerifySingleClock demonstrates independent verification.
func ExampleVerifySingleClock() {
	g := clockroute.NewGrid(21, 3, 0.5)
	tech := clockroute.DefaultTech()
	prob, _ := clockroute.NewProblem(g, tech, clockroute.Pt(0, 1), clockroute.Pt(20, 1))
	res, _ := clockroute.RBP(prob, 400, clockroute.Options{})
	latency, err := clockroute.VerifySingleClock(res.Path, g, tech, 400)
	fmt.Printf("verified %.0f ps, err=%v\n", latency, err)
	// Output:
	// verified 800 ps, err=<nil>
}

// ExampleRoute routes the same net through the unified entry point, with a
// context carrying the caller's cancellation policy.
func ExampleRoute() {
	g := clockroute.NewGrid(21, 3, 0.5)
	tech := clockroute.DefaultTech()
	prob, err := clockroute.NewProblem(g, tech, clockroute.Pt(0, 1), clockroute.Pt(20, 1))
	if err != nil {
		panic(err)
	}
	res, err := clockroute.Route(context.Background(), prob, clockroute.Request{
		Kind:     clockroute.KindRBP,
		PeriodPS: 400,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("latency %.0f ps with %d registers\n", res.Latency, res.Registers)
	// Output:
	// latency 800 ps with 1 registers
}
