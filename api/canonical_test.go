package api

import (
	"strings"
	"testing"
)

// validCanonRoute is a baseline request covering every canonicalization rule:
// unordered corners, unsorted lists, duplicates, empties, and rects
// hanging off the grid.
func validCanonRoute() *RouteRequest {
	return &RouteRequest{
		Grid: GridSpec{
			W: 32, H: 32, PitchMM: 0.25,
			Obstacles: []Rect{
				{X0: 20, Y0: 20, X1: 10, Y1: 10}, // reversed corners
				{X0: 2, Y0: 2, X1: 4, Y1: 4},
				{X0: 2, Y0: 2, X1: 4, Y1: 4},     // duplicate
				{X0: 5, Y0: 5, X1: 5, Y1: 9},     // empty (x0==x1)
				{X0: 30, Y0: 30, X1: 99, Y1: 99}, // clipped to grid
			},
			RegisterBlockages: []Rect{{X0: 8, Y0: 0, X1: 12, Y1: 3}},
		},
		Kind:      "rbp",
		PeriodPS:  500,
		Src:       Point{X: 1, Y: 1},
		Dst:       Point{X: 30, Y: 30},
		TimeoutMS: 250,
	}
}

func mustHash(t *testing.T, req *RouteRequest) ProblemHash {
	t.Helper()
	p, err := Canonicalize(req)
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	return p.Hash()
}

func TestCanonicalizeNormalizesGrid(t *testing.T) {
	base := mustHash(t, validCanonRoute())

	// Corner order, list order, duplicates, empties, and off-grid spill
	// are all non-semantic: the hash must not move.
	reordered := validCanonRoute()
	reordered.Grid.Obstacles = []Rect{
		{X0: 4, Y0: 4, X1: 2, Y1: 2},     // dedup target, corners flipped
		{X0: 30, Y0: 30, X1: 32, Y1: 32}, // pre-clipped form of the spill rect
		{X0: 10, Y0: 20, X1: 20, Y1: 10}, // mixed corner order
	}
	if got := mustHash(t, reordered); got != base {
		t.Fatalf("hash moved under rect normalization: %s vs %s", got, base)
	}

	// Semantic changes must move it.
	for name, mut := range map[string]func(*RouteRequest){
		"period":   func(r *RouteRequest) { r.PeriodPS = 600 },
		"grid":     func(r *RouteRequest) { r.Grid.W = 33 },
		"pitch":    func(r *RouteRequest) { r.Grid.PitchMM = 0.5 },
		"endpoint": func(r *RouteRequest) { r.Dst = Point{X: 29, Y: 30} },
		"obstacle": func(r *RouteRequest) { r.Grid.Obstacles = r.Grid.Obstacles[:1] },
		"budget":   func(r *RouteRequest) { r.MaxConfigs = 1000 },
		"variant":  func(r *RouteRequest) { r.ArrayQueues = true },
		"blockage kind": func(r *RouteRequest) {
			r.Grid.WiringBlockages = r.Grid.RegisterBlockages
			r.Grid.RegisterBlockages = nil
		},
	} {
		req := validCanonRoute()
		mut(req)
		if got := mustHash(t, req); got == base {
			t.Errorf("%s change did not move the hash", name)
		}
	}
}

func TestCanonicalizeStripsNonSemanticFields(t *testing.T) {
	base := mustHash(t, validCanonRoute())
	for name, mut := range map[string]func(*RouteRequest){
		"timeout":      func(r *RouteRequest) { r.TimeoutMS = 0 },
		"cache block":  func(r *RouteRequest) { r.Cache = &CacheOptions{Mode: CacheModeBypass} },
		"cache empty":  func(r *RouteRequest) { r.Cache = &CacheOptions{} },
		"gals periods": func(r *RouteRequest) { r.SrcPeriodPS, r.DstPeriodPS = 123, 456 }, // unused by rbp
	} {
		req := validCanonRoute()
		mut(req)
		if got := mustHash(t, req); got != base {
			t.Errorf("%s is non-semantic but moved the hash", name)
		}
	}

	// The inverse for GALS: period_ps and array_queues are rbp-only noise.
	gals := validCanonRoute()
	gals.Kind, gals.PeriodPS = "gals", 0
	gals.SrcPeriodPS, gals.DstPeriodPS = 400, 650
	g1 := mustHash(t, gals)
	noisy := validCanonRoute()
	noisy.Kind, noisy.PeriodPS = "gals", 777
	noisy.SrcPeriodPS, noisy.DstPeriodPS = 400, 650
	noisy.ArrayQueues = true
	if g2 := mustHash(t, noisy); g2 != g1 {
		t.Fatalf("rbp-only fields moved a gals hash: %s vs %s", g2, g1)
	}
}

func TestCanonicalizeRejectsInvalid(t *testing.T) {
	req := validCanonRoute()
	req.Kind = "quantum"
	if _, err := Canonicalize(req); err == nil {
		t.Fatal("unknown kind accepted")
	}
	req = validCanonRoute()
	req.Src = req.Dst
	if _, err := Canonicalize(req); err == nil {
		t.Fatal("src==dst accepted")
	}
}

func TestCanonicalizeNet(t *testing.T) {
	grid := &GridSpec{W: 32, H: 32, PitchMM: 0.25}
	rbpNet := &NetSpec{Name: "a", Src: Point{X: 1, Y: 1}, Dst: Point{X: 30, Y: 30}, SrcPeriodPS: 500, DstPeriodPS: 500}
	p, err := CanonicalizeNet(grid, rbpNet)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "rbp" || p.PeriodPS != 500 || p.SrcPeriodPS != 0 {
		t.Fatalf("equal-period net canonicalized to %+v, want rbp@500", p)
	}

	// The name is not part of the problem: same geometry, different name,
	// same hash.
	renamed := *rbpNet
	renamed.Name = "b"
	p2, _ := CanonicalizeNet(grid, &renamed)
	if p2.Hash() != p.Hash() {
		t.Fatal("net name moved the per-net hash")
	}

	// The per-net form must agree with the equivalent /v1/route request:
	// both endpoints advertise the same wire-visible problem_hash (the
	// stored response shapes differ, so the server keys them apart).
	routeEq := &RouteRequest{Grid: *grid, Kind: "rbp", PeriodPS: 500,
		Src: rbpNet.Src, Dst: rbpNet.Dst}
	if got := mustHash(t, routeEq); got != p.Hash() {
		t.Fatalf("per-net and route canonical forms disagree: %s vs %s", p.Hash(), got)
	}

	galsNet := &NetSpec{Name: "x", Src: Point{X: 1, Y: 1}, Dst: Point{X: 30, Y: 30}, SrcPeriodPS: 400, DstPeriodPS: 650}
	pg, err := CanonicalizeNet(grid, galsNet)
	if err != nil {
		t.Fatal(err)
	}
	if pg.Kind != "gals" || pg.SrcPeriodPS != 400 || pg.DstPeriodPS != 650 || pg.PeriodPS != 0 {
		t.Fatalf("unequal-period net canonicalized to %+v, want gals 400/650", pg)
	}

	// Wire widths are semantic and order-sensitive (first-best wins ties).
	wide := *rbpNet
	wide.WireWidths = []float64{1, 2}
	pw, _ := CanonicalizeNet(grid, &wide)
	if pw.Hash() == p.Hash() {
		t.Fatal("wire_widths did not move the hash")
	}
	swapped := *rbpNet
	swapped.WireWidths = []float64{2, 1}
	ps, _ := CanonicalizeNet(grid, &swapped)
	if ps.Hash() == pw.Hash() {
		t.Fatal("wire_widths order must stay semantic")
	}
}

func TestProblemHashRendering(t *testing.T) {
	h := mustHash(t, validCanonRoute())
	hex := h.Hex()
	if len(hex) != 64 || strings.ToLower(hex) != hex {
		t.Fatalf("hex form %q not 64 lowercase chars", hex)
	}
	if h.ETag() != `"`+hex+`"` {
		t.Fatalf("ETag %q not the quoted hex", h.ETag())
	}
}

// TestProblemHashUint64 pins the ring key to the big-endian first eight
// bytes of the digest: a silent change would remap every net's shard.
func TestProblemHashUint64(t *testing.T) {
	var h ProblemHash
	copy(h[:], []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0xff})
	if got, want := h.Uint64(), uint64(0x0102030405060708); got != want {
		t.Fatalf("Uint64 = %#x, want %#x", got, want)
	}
	real := mustHash(t, validCanonRoute())
	if real.Uint64() == 0 {
		t.Fatal("real hash folded to zero (suspicious)")
	}
}

func TestCacheOptionsValidate(t *testing.T) {
	for _, ok := range []string{"", "default", "bypass", "refresh"} {
		if err := (&CacheOptions{Mode: ok}).Validate(); err != nil {
			t.Errorf("mode %q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"Default", "none", "force", "x"} {
		if err := (&CacheOptions{Mode: bad}).Validate(); err == nil {
			t.Errorf("mode %q accepted", bad)
		}
	}
	var nilOpts *CacheOptions
	if nilOpts.EffectiveMode() != CacheModeDefault {
		t.Fatal("nil options must resolve to default")
	}
}

// FuzzCanonicalHash: for any decodable request, the canonical hash must be
// stable under every non-semantic rewrite — rect corner order, blockage
// list order, duplicated rects, and the stripped fields.
func FuzzCanonicalHash(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRouteRequest(strings.NewReader(string(data)))
		if err != nil {
			return // only valid requests canonicalize
		}
		p, err := Canonicalize(req)
		if err != nil {
			t.Fatalf("decoded request fails Canonicalize: %v", err)
		}
		base := p.Hash()

		perturbed := *req
		perturbed.Grid.Obstacles = permuteRects(req.Grid.Obstacles)
		perturbed.Grid.RegisterBlockages = permuteRects(req.Grid.RegisterBlockages)
		perturbed.Grid.WiringBlockages = permuteRects(req.Grid.WiringBlockages)
		perturbed.TimeoutMS = (req.TimeoutMS + 1) % 1000
		perturbed.Cache = &CacheOptions{Mode: CacheModeRefresh}
		p2, err := Canonicalize(&perturbed)
		if err != nil {
			t.Fatalf("perturbed request fails Canonicalize: %v", err)
		}
		if got := p2.Hash(); got != base {
			t.Fatalf("hash unstable under non-semantic rewrite: %s vs %s", got, base)
		}

		// And the encoding itself must be deterministic call to call.
		if string(p.AppendBinary(nil)) != string(p2.AppendBinary(nil)) {
			t.Fatal("canonical encodings differ for equal problems")
		}
	})
}

// permuteRects reverses a rect list and swaps every rect's corners — a
// deterministic non-semantic rewrite, with a duplicate appended when the
// list is non-empty.
func permuteRects(rects []Rect) []Rect {
	if len(rects) == 0 {
		return rects
	}
	out := make([]Rect, 0, len(rects)+1)
	for i := len(rects) - 1; i >= 0; i-- {
		r := rects[i]
		out = append(out, Rect{X0: r.X1, Y0: r.Y1, X1: r.X0, Y1: r.Y0})
	}
	out = append(out, rects[0])
	return out
}
