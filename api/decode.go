package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"clockroute/internal/core"
)

// Resource ceilings enforced by validation, sized so a hostile request
// cannot make the service allocate unbounded memory before admission
// control even sees it.
const (
	// MaxRequestBytes bounds a request body; decoders read no further.
	MaxRequestBytes = 4 << 20
	// MaxGridNodes bounds w*h of a requested grid.
	MaxGridNodes = 1 << 21
	// MaxNets bounds the nets of one PlanRequest.
	MaxNets = 4096
	// MaxRects bounds each blockage list of a GridSpec.
	MaxRects = 4096
	// MaxWireWidths bounds one net's width sweep.
	MaxWireWidths = 16
	// maxCoord bounds rectangle coordinates; rects are clipped to the grid
	// anyway, the bound only keeps arithmetic far from overflow.
	maxCoord = 1 << 24
)

// DecodeRouteRequest strictly decodes and validates one RouteRequest from
// r: unknown fields, trailing data, oversized bodies, and semantically
// invalid instances are all errors. Any returned error is safe to report
// as a 400; decoding never panics regardless of input.
func DecodeRouteRequest(r io.Reader) (*RouteRequest, error) {
	var req RouteRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodePlanRequest is DecodeRouteRequest for PlanRequest bodies.
func DecodePlanRequest(r io.Reader) (*PlanRequest, error) {
	var req PlanRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// decodeStrict decodes exactly one JSON value into v, rejecting unknown
// fields, trailing data, and bodies past MaxRequestBytes.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("api: malformed request: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return errors.New("api: trailing data after request body")
	}
	if dec.InputOffset() > MaxRequestBytes {
		return fmt.Errorf("api: request body exceeds %d bytes", MaxRequestBytes)
	}
	return nil
}

// Validate checks a GridSpec against the resource ceilings and the grid
// package's own preconditions (NewGrid panics on bad dimensions, so the
// service must reject them here).
func (g *GridSpec) Validate() error {
	if g.W < 2 || g.H < 1 {
		return fmt.Errorf("api: grid %dx%d too small, want at least 2x1", g.W, g.H)
	}
	if n := int64(g.W) * int64(g.H); n > MaxGridNodes {
		return fmt.Errorf("api: grid %dx%d has %d nodes, limit %d", g.W, g.H, n, MaxGridNodes)
	}
	if !finitePositive(g.PitchMM) {
		return fmt.Errorf("api: grid pitch %g mm must be positive and finite", g.PitchMM)
	}
	for _, set := range []struct {
		name  string
		rects []Rect
	}{
		{"obstacles", g.Obstacles},
		{"register_blockages", g.RegisterBlockages},
		{"wiring_blockages", g.WiringBlockages},
	} {
		if len(set.rects) > MaxRects {
			return fmt.Errorf("api: %d %s, limit %d", len(set.rects), set.name, MaxRects)
		}
		for _, r := range set.rects {
			for _, c := range [4]int{r.X0, r.Y0, r.X1, r.Y1} {
				if c < -maxCoord || c > maxCoord {
					return fmt.Errorf("api: %s coordinate %d out of range", set.name, c)
				}
			}
		}
	}
	return nil
}

// contains reports whether p lies on the grid.
func (g *GridSpec) contains(p Point) bool {
	return p.X >= 0 && p.X < g.W && p.Y >= 0 && p.Y < g.H
}

// Validate checks the request's semantics: a well-formed grid, on-grid
// distinct endpoints, a known algorithm kind, and the clock parameters
// that kind requires.
func (r *RouteRequest) Validate() error {
	if err := r.Grid.Validate(); err != nil {
		return err
	}
	kind, err := core.ParseKind(r.Kind)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	switch kind {
	case core.KindRBP:
		if !finitePositive(r.PeriodPS) {
			return fmt.Errorf("api: rbp needs a positive finite period_ps, got %g", r.PeriodPS)
		}
	case core.KindGALS:
		if !finitePositive(r.SrcPeriodPS) || !finitePositive(r.DstPeriodPS) {
			return fmt.Errorf("api: gals needs positive finite src_period_ps and dst_period_ps, got %g and %g",
				r.SrcPeriodPS, r.DstPeriodPS)
		}
	}
	if !r.Grid.contains(r.Src) || !r.Grid.contains(r.Dst) {
		return fmt.Errorf("api: endpoints %v -> %v must lie on the %dx%d grid",
			r.Src, r.Dst, r.Grid.W, r.Grid.H)
	}
	if r.Src == r.Dst {
		return errors.New("api: source equals sink")
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("api: negative timeout_ms %d", r.TimeoutMS)
	}
	if r.MaxConfigs < 0 {
		return fmt.Errorf("api: negative max_configs %d", r.MaxConfigs)
	}
	if r.Cache != nil {
		if err := r.Cache.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the batch request: a well-formed grid and a non-empty
// net list with unique names, on-grid endpoints, and positive periods.
func (r *PlanRequest) Validate() error {
	if err := r.Grid.Validate(); err != nil {
		return err
	}
	if len(r.Nets) == 0 {
		return errors.New("api: plan has no nets")
	}
	if len(r.Nets) > MaxNets {
		return fmt.Errorf("api: %d nets, limit %d", len(r.Nets), MaxNets)
	}
	seen := make(map[string]bool, len(r.Nets))
	for i, n := range r.Nets {
		if n.Name == "" {
			return fmt.Errorf("api: net %d has an empty name", i)
		}
		if seen[n.Name] {
			return fmt.Errorf("api: duplicate net name %q", n.Name)
		}
		seen[n.Name] = true
		if err := n.Validate(&r.Grid); err != nil {
			return err
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("api: negative timeout_ms %d", r.TimeoutMS)
	}
	if r.Workers < 0 {
		return fmt.Errorf("api: negative workers %d", r.Workers)
	}
	if r.Cache != nil {
		if err := r.Cache.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks one net against g: a non-empty name, positive finite
// periods, on-grid distinct endpoints, and a bounded, positive width sweep.
// It is the per-net half of PlanRequest.Validate, shared with the streaming
// decoder, which validates each line as it arrives; name uniqueness is the
// caller's, since it is a property of the batch, not the net.
func (n *NetSpec) Validate(g *GridSpec) error {
	if n.Name == "" {
		return errors.New("api: net with empty name")
	}
	if !finitePositive(n.SrcPeriodPS) || !finitePositive(n.DstPeriodPS) {
		return fmt.Errorf("api: net %q needs positive finite periods, got %g and %g",
			n.Name, n.SrcPeriodPS, n.DstPeriodPS)
	}
	if !g.contains(n.Src) || !g.contains(n.Dst) {
		return fmt.Errorf("api: net %q endpoints %v -> %v must lie on the %dx%d grid",
			n.Name, n.Src, n.Dst, g.W, g.H)
	}
	if n.Src == n.Dst {
		return fmt.Errorf("api: net %q source equals sink", n.Name)
	}
	if len(n.WireWidths) > MaxWireWidths {
		return fmt.Errorf("api: net %q sweeps %d wire widths, limit %d", n.Name, len(n.WireWidths), MaxWireWidths)
	}
	for _, w := range n.WireWidths {
		if !finitePositive(w) {
			return fmt.Errorf("api: net %q wire width %g must be positive and finite", n.Name, w)
		}
	}
	return nil
}

func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
}
