package api

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"clockroute/internal/core"
)

// CanonicalVersion is the version of the canonical problem form. It is the
// first field of the hashed encoding, so any change to normalization or
// encoding rules bumps it and retires every previously computed hash
// instead of silently colliding with it.
const CanonicalVersion = 1

// Cache modes accepted in the "cache" block of a request. The empty string
// and "default" are equivalent.
const (
	// CacheModeDefault consults the cache and fills it on a miss.
	CacheModeDefault = "default"
	// CacheModeBypass ignores the cache entirely: no lookup, no fill.
	CacheModeBypass = "bypass"
	// CacheModeRefresh skips the lookup but overwrites the entry with the
	// freshly computed result.
	CacheModeRefresh = "refresh"
)

// CacheOptions is the optional "cache" block of RouteRequest and
// PlanRequest, selecting how the request interacts with the server's
// content-addressed result cache.
type CacheOptions struct {
	// Mode is "default" (or empty), "bypass", or "refresh"; anything else
	// is rejected by validation.
	Mode string `json:"mode,omitempty"`
}

// Validate rejects unknown cache modes.
func (c *CacheOptions) Validate() error {
	switch c.Mode {
	case "", CacheModeDefault, CacheModeBypass, CacheModeRefresh:
		return nil
	}
	return fmt.Errorf("api: unknown cache mode %q (want default, bypass, or refresh)", c.Mode)
}

// EffectiveMode resolves the mode of a possibly nil options block.
func (c *CacheOptions) EffectiveMode() string {
	if c == nil || c.Mode == "" {
		return CacheModeDefault
	}
	return c.Mode
}

// ProblemHash is the SHA-256 of a canonical problem encoding — the
// content address of a routing problem. Two requests with equal hashes
// are the same problem and produce byte-identical results (modulo wall
// time), which is what makes the hash safe as a cache key and as the
// consistent-hashing key of the planned sharded cluster.
type ProblemHash [sha256.Size]byte

// Hex renders the hash as lowercase hex, the form carried on the wire
// ("problem_hash") and in the ETag of /v1/route.
func (h ProblemHash) Hex() string { return hex.EncodeToString(h[:]) }

// String implements fmt.Stringer.
func (h ProblemHash) String() string { return h.Hex() }

// ETag renders the strong entity tag derived from the hash, as emitted by
// /v1/route and matched against If-None-Match.
func (h ProblemHash) ETag() string { return `"` + h.Hex() + `"` }

// Uint64 folds the hash to its first eight bytes (big-endian), the fixed
// point a consistent-hashing ring keys on. SHA-256 output is uniform, so
// the prefix is as well-distributed as the whole digest.
func (h ProblemHash) Uint64() uint64 { return binary.BigEndian.Uint64(h[:8]) }

// Problem is the versioned canonical form of one routing problem: every
// field is normalized so that two requests meaning the same search
// compare (and hash) equal.
//
// Normalization rules:
//   - rectangle corners are ordered (x0<=x1, y0<=y1), rects are clipped to
//     the grid, empties dropped, and each blockage list is sorted and
//     deduplicated — grid construction is order-independent and
//     idempotent, so none of this changes the built grid;
//   - fields the algorithm kind does not consult are zeroed (an RBP
//     problem carries only PeriodPS, a GALS problem only the two endpoint
//     periods, FastPath none);
//   - non-semantic request fields (timeout_ms, workers, the cache block)
//     are absent by construction.
//
// MaxConfigs and ArrayQueues stay: the former changes which searches
// abort, the latter selects a different (result-identical but separately
// audited) kernel, and the cache must never conflate problems whose
// responses could differ in any byte.
type Problem struct {
	Version     int
	Kind        string
	PeriodPS    float64
	SrcPeriodPS float64
	DstPeriodPS float64
	Grid        GridSpec
	Src, Dst    Point
	MaxConfigs  int
	ArrayQueues bool
	// WireWidths is the per-net width sweep (plan nets only). Order is
	// preserved: the sweep keeps the first-best result, so reordering is
	// not semantics-preserving.
	WireWidths []float64
}

// Canonicalize reduces a validated RouteRequest to its canonical problem
// form. It returns an error on requests that fail Validate — callers that
// decoded through DecodeRouteRequest never see one.
func Canonicalize(req *RouteRequest) (Problem, error) {
	if err := req.Validate(); err != nil {
		return Problem{}, err
	}
	kind, _ := core.ParseKind(req.Kind) // validated above
	p := Problem{
		Version:     CanonicalVersion,
		Kind:        kind.String(),
		Grid:        canonicalGrid(&req.Grid),
		Src:         req.Src,
		Dst:         req.Dst,
		MaxConfigs:  req.MaxConfigs,
		ArrayQueues: req.ArrayQueues,
	}
	switch kind {
	case core.KindRBP:
		p.PeriodPS = req.PeriodPS
		// ArrayQueues is an RBP-only variant switch; elsewhere it is noise.
	case core.KindGALS:
		p.SrcPeriodPS = req.SrcPeriodPS
		p.DstPeriodPS = req.DstPeriodPS
		p.ArrayQueues = false
	default:
		p.ArrayQueues = false
	}
	return p, nil
}

// CanonicalizeNet reduces one net of a validated PlanRequest to its
// canonical per-net problem. The net's name is deliberately absent: two
// nets with the same geometry and clocks under different names are the
// same problem. Nets with equal endpoint periods canonicalize to an RBP
// problem at that period, unequal to GALS, mirroring the planner's
// dispatch rule.
func CanonicalizeNet(grid *GridSpec, net *NetSpec) (Problem, error) {
	if err := grid.Validate(); err != nil {
		return Problem{}, err
	}
	if !finitePositive(net.SrcPeriodPS) || !finitePositive(net.DstPeriodPS) {
		return Problem{}, fmt.Errorf("api: net needs positive finite periods, got %g and %g",
			net.SrcPeriodPS, net.DstPeriodPS)
	}
	if !grid.contains(net.Src) || !grid.contains(net.Dst) || net.Src == net.Dst {
		return Problem{}, fmt.Errorf("api: net endpoints %v -> %v invalid on the %dx%d grid",
			net.Src, net.Dst, grid.W, grid.H)
	}
	p := Problem{
		Version: CanonicalVersion,
		Grid:    canonicalGrid(grid),
		Src:     net.Src,
		Dst:     net.Dst,
	}
	if net.SrcPeriodPS == net.DstPeriodPS {
		p.Kind = core.KindRBP.String()
		p.PeriodPS = net.SrcPeriodPS
	} else {
		p.Kind = core.KindGALS.String()
		p.SrcPeriodPS = net.SrcPeriodPS
		p.DstPeriodPS = net.DstPeriodPS
	}
	if len(net.WireWidths) > 0 {
		p.WireWidths = append([]float64(nil), net.WireWidths...)
	}
	return p, nil
}

// canonicalGrid normalizes a GridSpec: each blockage list has its rect
// corners ordered, rects clipped to the grid, empties dropped, and the
// survivors sorted and deduplicated.
func canonicalGrid(g *GridSpec) GridSpec {
	return GridSpec{
		W:                 g.W,
		H:                 g.H,
		PitchMM:           g.PitchMM,
		Obstacles:         canonicalRects(g.Obstacles, g.W, g.H),
		RegisterBlockages: canonicalRects(g.RegisterBlockages, g.W, g.H),
		WiringBlockages:   canonicalRects(g.WiringBlockages, g.W, g.H),
	}
}

// canonicalRects normalizes one blockage list. The result is nil when no
// rect survives, so "no blockages" encodes identically whether the list
// was absent, empty, or all-empty rects.
func canonicalRects(rects []Rect, w, h int) []Rect {
	out := make([]Rect, 0, len(rects))
	for _, r := range rects {
		if r.X0 > r.X1 {
			r.X0, r.X1 = r.X1, r.X0
		}
		if r.Y0 > r.Y1 {
			r.Y0, r.Y1 = r.Y1, r.Y0
		}
		// Clip to the grid: points outside never affect construction.
		r.X0 = max(r.X0, 0)
		r.Y0 = max(r.Y0, 0)
		r.X1 = min(r.X1, w)
		r.Y1 = min(r.Y1, h)
		if r.X0 >= r.X1 || r.Y0 >= r.Y1 {
			continue // empty after normalization
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return rectLess(out[i], out[j]) })
	dedup := out[:1]
	for _, r := range out[1:] {
		if r != dedup[len(dedup)-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

func rectLess(a, b Rect) bool {
	switch {
	case a.X0 != b.X0:
		return a.X0 < b.X0
	case a.Y0 != b.Y0:
		return a.Y0 < b.Y0
	case a.X1 != b.X1:
		return a.X1 < b.X1
	default:
		return a.Y1 < b.Y1
	}
}

// Hash computes the content address of the canonical problem: SHA-256
// over the deterministic encoding of AppendBinary.
func (p *Problem) Hash() ProblemHash {
	h := sha256.New()
	h.Write(p.AppendBinary(make([]byte, 0, 256)))
	var out ProblemHash
	h.Sum(out[:0])
	return out
}

// AppendBinary appends the deterministic binary encoding of the problem
// to dst. The layout is fixed-order and length-prefixed: every field is
// written in declaration order as big-endian fixed-width words, strings
// and lists carry a uint32 length prefix, and floats are written as IEEE
// 754 bits (so -0 and 0 hash differently — validation admits neither
// where it matters). No two distinct canonical problems share an
// encoding.
func (p *Problem) AppendBinary(dst []byte) []byte {
	dst = appendUint32(dst, uint32(p.Version))
	dst = appendString(dst, p.Kind)
	dst = appendFloat(dst, p.PeriodPS)
	dst = appendFloat(dst, p.SrcPeriodPS)
	dst = appendFloat(dst, p.DstPeriodPS)
	dst = appendInt(dst, p.Grid.W)
	dst = appendInt(dst, p.Grid.H)
	dst = appendFloat(dst, p.Grid.PitchMM)
	dst = appendRects(dst, p.Grid.Obstacles)
	dst = appendRects(dst, p.Grid.RegisterBlockages)
	dst = appendRects(dst, p.Grid.WiringBlockages)
	dst = appendInt(dst, p.Src.X)
	dst = appendInt(dst, p.Src.Y)
	dst = appendInt(dst, p.Dst.X)
	dst = appendInt(dst, p.Dst.Y)
	dst = appendInt(dst, p.MaxConfigs)
	if p.ArrayQueues {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendUint32(dst, uint32(len(p.WireWidths)))
	for _, w := range p.WireWidths {
		dst = appendFloat(dst, w)
	}
	return dst
}

func appendUint32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

func appendInt(dst []byte, v int) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(int64(v)))
}

func appendFloat(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendString(dst []byte, s string) []byte {
	dst = appendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendRects(dst []byte, rects []Rect) []byte {
	dst = appendUint32(dst, uint32(len(rects)))
	for _, r := range rects {
		dst = appendInt(dst, r.X0)
		dst = appendInt(dst, r.Y0)
		dst = appendInt(dst, r.X1)
		dst = appendInt(dst, r.Y1)
	}
	return dst
}
