package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ContentTypeNDJSON selects the streaming variant of POST /v1/plan: the
// request body and the response body are both newline-delimited JSON.
//
// A streamed request is one PlanStreamHeader line followed by one NetSpec
// line per net; closing the body ends the plan. The response is one
// NetResult line per net in completion order — a net's result goes out the
// moment it is routed (or served from the result cache), while later nets
// are still being decoded or searched — terminated by exactly one
// PlanStreamTrailer line carrying the batch stats, or the error that ended
// the stream early. The results are byte-identical to the buffered
// endpoint's for the same nets, elapsed-time fields aside; only the
// framing differs.
//
// Streams exist for plans too large to buffer: neither side ever holds the
// whole net list or result list, so the per-request ceiling is MaxStreamNets
// rather than MaxNets, and each line is bounded by MaxLineBytes instead of
// the body by MaxRequestBytes.
const ContentTypeNDJSON = "application/x-ndjson"

// Streaming resource ceilings, the per-line counterparts of the buffered
// bounds.
const (
	// MaxLineBytes bounds one NDJSON line of a streamed request.
	MaxLineBytes = 1 << 20
	// MaxStreamNets bounds the nets of one streamed plan.
	MaxStreamNets = 1 << 20
)

// PlanStreamHeader is the first line of a streamed plan request: a
// PlanRequest without its net list.
type PlanStreamHeader struct {
	Grid GridSpec `json:"grid"`
	// Workers, TimeoutMS, and Cache mean exactly what they do on
	// PlanRequest; the timeout covers the whole stream, decode included.
	Workers   int           `json:"workers,omitempty"`
	TimeoutMS int           `json:"timeout_ms,omitempty"`
	Cache     *CacheOptions `json:"cache,omitempty"`
}

// Validate checks the header exactly as PlanRequest.Validate checks the
// matching fields.
func (h *PlanStreamHeader) Validate() error {
	if err := h.Grid.Validate(); err != nil {
		return err
	}
	if h.TimeoutMS < 0 {
		return fmt.Errorf("api: negative timeout_ms %d", h.TimeoutMS)
	}
	if h.Workers < 0 {
		return fmt.Errorf("api: negative workers %d", h.Workers)
	}
	if h.Cache != nil {
		if err := h.Cache.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// PlanStreamTrailer is the final line of a streamed plan response. Exactly
// one of Stats and Error is set: Stats when the stream completed, Error
// when it was cut short (malformed line, invalid net, stream-level fault).
// Every NetResult line already emitted remains valid either way.
type PlanStreamTrailer struct {
	Stats *PlanStats `json:"stats,omitempty"`
	Error string     `json:"error,omitempty"`
}

// PlanStreamDecoder reads a streamed plan request: one strict-decoded JSON
// value per line, with the same unknown-field and validation rules as the
// buffered decoder, applied before the next line is read. It never buffers
// more than one line.
type PlanStreamDecoder struct {
	sc     *bufio.Scanner
	header bool
	nets   int
}

// NewPlanStreamDecoder wraps r, which must yield NDJSON lines.
func NewPlanStreamDecoder(r io.Reader) *PlanStreamDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), MaxLineBytes)
	return &PlanStreamDecoder{sc: sc}
}

// Header decodes and validates the stream's first line. It must be called
// exactly once, before Next.
func (d *PlanStreamDecoder) Header() (*PlanStreamHeader, error) {
	if d.header {
		return nil, errors.New("api: stream header already read")
	}
	d.header = true
	line, err := d.line()
	if err != nil {
		if err == io.EOF {
			return nil, errors.New("api: empty stream: missing header line")
		}
		return nil, err
	}
	var h PlanStreamHeader
	if err := decodeStrictLine(line, &h); err != nil {
		return nil, fmt.Errorf("api: stream header: %w", err)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// Next decodes and validates the next NetSpec line against the grid,
// returning io.EOF when the stream ends cleanly. Name uniqueness is the
// caller's to enforce — the decoder holds no per-net state beyond a count.
func (d *PlanStreamDecoder) Next(g *GridSpec) (*NetSpec, error) {
	if !d.header {
		return nil, errors.New("api: stream header not read")
	}
	line, err := d.line()
	if err != nil {
		return nil, err
	}
	if d.nets++; d.nets > MaxStreamNets {
		return nil, fmt.Errorf("api: stream exceeds %d nets", MaxStreamNets)
	}
	var n NetSpec
	if err := decodeStrictLine(line, &n); err != nil {
		return nil, fmt.Errorf("api: stream net %d: %w", d.nets, err)
	}
	if err := n.Validate(g); err != nil {
		return nil, err
	}
	return &n, nil
}

// line returns the next non-blank line, or io.EOF.
func (d *PlanStreamDecoder) line() ([]byte, error) {
	for d.sc.Scan() {
		if line := bytes.TrimSpace(d.sc.Bytes()); len(line) > 0 {
			return line, nil
		}
	}
	if err := d.sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("api: stream line exceeds %d bytes", MaxLineBytes)
		}
		return nil, fmt.Errorf("api: read stream: %w", err)
	}
	return nil, io.EOF
}

// decodeStrictLine decodes exactly one JSON value from line with unknown
// fields and trailing data rejected — decodeStrict, minus the body cap that
// the per-line limit already enforces.
func decodeStrictLine(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("malformed line: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return errors.New("trailing data after line value")
	}
	return nil
}
