// Package api defines the JSON wire format of the routing service
// (cmd/routed): the request and response bodies of POST /v1/route and
// POST /v1/plan, their strict decoders, and the validation rules that turn
// arbitrary client bytes into a well-formed routing instance or a clean
// 400 — never a panic.
//
// # JSON schema
//
// POST /v1/route routes one net. The body is a RouteRequest:
//
//	{
//	  "grid": {
//	    "w": 64, "h": 64, "pitch_mm": 0.25,
//	    "obstacles":          [{"x0":10,"y0":10,"x1":20,"y1":20}],
//	    "register_blockages": [{"x0":30,"y0":0,"x1":40,"y1":8}],
//	    "wiring_blockages":   []
//	  },
//	  "kind": "rbp",                   // "fastpath" | "rbp" | "gals"
//	  "period_ps": 500,                // rbp
//	  "src_period_ps": 0,              // gals
//	  "dst_period_ps": 0,              // gals
//	  "src": {"x":1,  "y":1},
//	  "dst": {"x":60, "y":60},
//	  "timeout_ms": 1000,              // optional per-request deadline
//	  "max_configs": 0,                // optional search budget
//	  "array_queues": false,           // rbp variant, identical results
//	  "cache": {"mode": "default"}     // optional: "default"|"bypass"|"refresh"
//	}
//
// Rectangles are half-open in grid units with corners in any order, like
// clockroute.R. Obstacles forbid gate insertion (wires pass), register
// blockages forbid clocked elements only, wiring blockages delete every
// incident edge.
//
// POST /v1/plan routes a batch of nets over one shared grid, fanned across
// the server's worker pool. The body is a PlanRequest:
//
//	{
//	  "grid": { ... as above ... },
//	  "nets": [
//	    {"name":"cpu-sram", "src":{"x":1,"y":1}, "dst":{"x":60,"y":60},
//	     "src_period_ps":500, "dst_period_ps":500,
//	     "wire_widths":[1,2]}           // optional width sweep
//	  ],
//	  "workers": 0,                    // <=0 selects the server default
//	  "timeout_ms": 5000,              // optional whole-batch deadline
//	  "cache": {"mode": "default"}     // optional, as on RouteRequest
//	}
//
// Nets with equal endpoint periods are routed with RBP, unequal with GALS.
//
// Responses are RouteResponse / PlanResponse on 200; every other status
// carries an ErrorResponse {"error":"..."}. Status mapping: 400 malformed
// or invalid request, 422 genuinely infeasible (no path exists), 429 load
// shed (Retry-After set), 503 shutting down, 504 per-request deadline
// exceeded with the search aborted.
//
// # Result cache
//
// The server memoizes results by content address: every request is reduced
// to a versioned canonical problem form (Canonicalize / CanonicalizeNet —
// rect corners ordered, blockage lists clipped/sorted/deduplicated,
// non-semantic fields like timeout_ms and workers stripped), encoded
// deterministically, and hashed (ProblemHash). Identical problems hit the
// cache and skip the search kernel entirely; a cached response is the
// byte-for-byte response a fresh search would produce, elapsed_ns timing
// aside.
//
// The optional "cache" block selects the interaction per request:
// "default" (lookup + fill), "bypass" (neither), "refresh" (recompute and
// overwrite). Unknown modes are rejected like any other malformed field.
// Responses carry "problem_hash" (hex) always and "cached": true when
// served from the cache — per net on /v1/plan. /v1/route additionally
// speaks HTTP conditional requests: the ETag is the quoted problem hash,
// If-None-Match with a matching tag yields 304 Not Modified, and every
// response carries "X-Cache: hit" or "X-Cache: miss".
package api

// Point is a grid coordinate on the wire.
type Point struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// Rect is a half-open grid rectangle on the wire; corners may arrive in
// any order.
type Rect struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
}

// GridSpec describes the routing grid and its blockage maps.
type GridSpec struct {
	W       int     `json:"w"`
	H       int     `json:"h"`
	PitchMM float64 `json:"pitch_mm"`
	// Obstacles forbid gate insertion; wires may pass (HardIP shadows).
	Obstacles []Rect `json:"obstacles,omitempty"`
	// RegisterBlockages forbid clocked elements only (ClockQuiet regions).
	RegisterBlockages []Rect `json:"register_blockages,omitempty"`
	// WiringBlockages delete every incident edge (WiringDense regions).
	WiringBlockages []Rect `json:"wiring_blockages,omitempty"`
}

// RouteRequest is the body of POST /v1/route.
type RouteRequest struct {
	Grid GridSpec `json:"grid"`
	// Kind selects the algorithm: "fastpath", "rbp", or "gals".
	Kind string `json:"kind"`
	// PeriodPS is the clock period for kind "rbp".
	PeriodPS float64 `json:"period_ps,omitempty"`
	// SrcPeriodPS / DstPeriodPS are the two domain periods for kind "gals".
	SrcPeriodPS float64 `json:"src_period_ps,omitempty"`
	DstPeriodPS float64 `json:"dst_period_ps,omitempty"`
	Src         Point   `json:"src"`
	Dst         Point   `json:"dst"`
	// TimeoutMS bounds this request's search wall time; 0 uses the server
	// default, and the server clamps to its configured maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxConfigs aborts the search after this many popped candidates
	// (0 = unlimited), mirroring Options.MaxConfigs.
	MaxConfigs int `json:"max_configs,omitempty"`
	// ArrayQueues selects the array-of-queues RBP variant.
	ArrayQueues bool `json:"array_queues,omitempty"`
	// Cache selects how the request interacts with the server's result
	// cache; nil means "default". See the package doc's Result cache
	// section.
	Cache *CacheOptions `json:"cache,omitempty"`
}

// NetSpec is one net of a PlanRequest.
type NetSpec struct {
	Name        string  `json:"name"`
	Src         Point   `json:"src"`
	Dst         Point   `json:"dst"`
	SrcPeriodPS float64 `json:"src_period_ps"`
	DstPeriodPS float64 `json:"dst_period_ps"`
	// WireWidths optionally sweeps wire-width multiples, keeping the best.
	WireWidths []float64 `json:"wire_widths,omitempty"`
}

// PlanRequest is the body of POST /v1/plan.
type PlanRequest struct {
	Grid GridSpec  `json:"grid"`
	Nets []NetSpec `json:"nets"`
	// Workers caps the concurrent searches for this batch; <= 0 selects the
	// server default, and the server clamps to its configured maximum.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds the whole batch's wall time (same clamping as
	// RouteRequest.TimeoutMS).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Cache selects how the batch interacts with the per-net result cache;
	// nil means "default".
	Cache *CacheOptions `json:"cache,omitempty"`
}

// SearchStats mirrors core.Stats on the wire.
type SearchStats struct {
	Configs int `json:"configs"`
	Pushed  int `json:"pushed"`
	Pruned  int `json:"pruned"`
	// BoundPruned counts candidates cut by the admissible search bounds;
	// ProbeConfigs is the incumbent probe's extra effort (not in Configs).
	BoundPruned  int   `json:"bound_pruned,omitempty"`
	ProbeConfigs int   `json:"probe_configs,omitempty"`
	Killed       int   `json:"killed,omitempty"`
	Waves        int   `json:"waves"`
	MaxQSize     int   `json:"max_q_size"`
	ElapsedNS    int64 `json:"elapsed_ns"`
}

// RouteResponse is the 200 body of POST /v1/route. Path and Gates are
// parallel: Gates[i] labels the element at Path[i] — "" for plain wire,
// "reg", "fifo", "latch", or "buf<N>" for buffer N of the library.
type RouteResponse struct {
	LatencyPS     float64     `json:"latency_ps"`
	SourceDelayPS float64     `json:"source_delay_ps"`
	SlackPS       float64     `json:"slack_ps,omitempty"`
	Registers     int         `json:"registers"`
	Buffers       int         `json:"buffers"`
	Path          []Point     `json:"path"`
	Gates         []string    `json:"gates"`
	Stats         SearchStats `json:"stats"`
	// ProblemHash is the hex content address of the canonical problem this
	// response answers (also the /v1/route ETag, unquoted).
	ProblemHash string `json:"problem_hash,omitempty"`
	// Cached reports the response was served from the result cache without
	// running a search. Stats then describe the search that originally
	// produced the entry.
	Cached bool `json:"cached,omitempty"`
}

// NetResult is one net's outcome inside a PlanResponse. Error is set when
// the net failed; the remaining fields are then zero.
type NetResult struct {
	Name      string   `json:"name"`
	Mode      string   `json:"mode,omitempty"` // "rbp" or "gals"
	Error     string   `json:"error,omitempty"`
	LatencyPS float64  `json:"latency_ps,omitempty"`
	SrcCycles int      `json:"src_cycles,omitempty"`
	DstCycles int      `json:"dst_cycles,omitempty"`
	Registers int      `json:"registers,omitempty"`
	Buffers   int      `json:"buffers,omitempty"`
	WireMM    float64  `json:"wire_mm,omitempty"`
	WireWidth float64  `json:"wire_width,omitempty"`
	Path      []Point  `json:"path,omitempty"`
	Gates     []string `json:"gates,omitempty"`
	ElapsedNS int64    `json:"elapsed_ns,omitempty"`
	// ProblemHash is the hex content address of this net's canonical
	// per-net problem (the net name is not part of it).
	ProblemHash string `json:"problem_hash,omitempty"`
	// Cached reports the net was served from the result cache.
	Cached bool `json:"cached,omitempty"`
}

// PlanStats aggregates the batch, mirroring planner.PlanStats.
type PlanStats struct {
	Workers           int   `json:"workers"`
	NetsRouted        int   `json:"nets_routed"`
	NetsFailed        int   `json:"nets_failed"`
	TotalConfigs      int   `json:"total_configs"`
	TotalPushed       int   `json:"total_pushed"`
	TotalPruned       int   `json:"total_pruned"`
	TotalBoundPruned  int   `json:"total_bound_pruned,omitempty"`
	TotalProbeConfigs int   `json:"total_probe_configs,omitempty"`
	TotalWaves        int   `json:"total_waves"`
	MaxQSize          int   `json:"max_q_size"`
	ElapsedNS         int64 `json:"elapsed_ns"`
}

// PlanResponse is the 200 body of POST /v1/plan. Nets keeps the request
// order.
type PlanResponse struct {
	Nets  []NetResult `json:"nets"`
	Stats PlanStats   `json:"stats"`
}

// ErrorResponse is the body of every non-200 status.
type ErrorResponse struct {
	Error string `json:"error"`
}
