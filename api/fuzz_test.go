package api

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Seed corpus: the documented example requests plus structurally tricky
// near-misses. Shared by both fuzzers so either can mutate toward the
// other's shape.
var fuzzSeeds = []string{
	// The package-doc /v1/route example.
	`{"grid":{"w":64,"h":64,"pitch_mm":0.25,"obstacles":[{"x0":10,"y0":10,"x1":20,"y1":20}]},
	  "kind":"rbp","period_ps":500,"src":{"x":1,"y":1},"dst":{"x":60,"y":60},"timeout_ms":1000}`,
	// The package-doc /v1/plan example.
	`{"grid":{"w":64,"h":64,"pitch_mm":0.25},
	  "nets":[{"name":"cpu-sram","src":{"x":1,"y":1},"dst":{"x":60,"y":60},
	           "src_period_ps":500,"dst_period_ps":500,"wire_widths":[1,2]}],
	  "workers":2,"timeout_ms":5000}`,
	// GALS route.
	`{"grid":{"w":32,"h":4,"pitch_mm":0.5},"kind":"gals","src_period_ps":400,"dst_period_ps":650,
	  "src":{"x":0,"y":0},"dst":{"x":31,"y":3}}`,
	`{}`,
	`{"grid":{"w":2,"h":1,"pitch_mm":1},"kind":"fastpath","src":{"x":0,"y":0},"dst":{"x":1,"y":0}}`,
	`{"grid":{"w":1000000000,"h":1000000000,"pitch_mm":0.1}}`,
	`{"kind":"rbp","period_ps":1e999}`,
	`not json at all`,
	`{"grid":{"w":4,"h":4,"pitch_mm":0.5}} trailing`,
	`[1,2,3]`,
	`null`,
}

// fuzzDecode drives one decoder with arbitrary bytes: it must return a
// value or an error — never panic — and must not leak goroutines.
func fuzzDecode[T any](f *testing.F, decode func(*bytes.Reader) (T, error)) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	before := runtime.NumGoroutine()
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := decode(bytes.NewReader(data))
		_ = err // any error is fine; only a panic is a bug
		if n := runtime.NumGoroutine(); n > before+20 {
			// Generous slack for the fuzzer's own workers: the decoder
			// itself must not spawn anything.
			time.Sleep(50 * time.Millisecond)
			if n = runtime.NumGoroutine(); n > before+20 {
				t.Fatalf("goroutine leak: %d -> %d", before, n)
			}
		}
	})
}

// FuzzDecodeRouteRequest fuzzes the /v1/route body decoder.
func FuzzDecodeRouteRequest(f *testing.F) {
	fuzzDecode(f, func(r *bytes.Reader) (*RouteRequest, error) { return DecodeRouteRequest(r) })
}

// FuzzDecodePlanRequest fuzzes the /v1/plan body decoder.
func FuzzDecodePlanRequest(f *testing.F) {
	fuzzDecode(f, func(r *bytes.Reader) (*PlanRequest, error) { return DecodePlanRequest(r) })
}

// TestDecodeAcceptedRoundTrips: anything the decoders accept must survive
// an encode/decode round trip (the service echoes requests nowhere, but
// the property pins the wire format as self-consistent).
func TestDecodeAcceptedRoundTrips(t *testing.T) {
	for _, s := range fuzzSeeds {
		if req, err := DecodeRouteRequest(strings.NewReader(s)); err == nil {
			if err := req.Validate(); err != nil {
				t.Errorf("accepted route request fails re-validation: %v", err)
			}
		}
		if req, err := DecodePlanRequest(strings.NewReader(s)); err == nil {
			if err := req.Validate(); err != nil {
				t.Errorf("accepted plan request fails re-validation: %v", err)
			}
		}
	}
}
