package api

import (
	"strings"
	"testing"
)

const validRoute = `{"grid":{"w":16,"h":16,"pitch_mm":0.25},"kind":"rbp","period_ps":500,
  "src":{"x":1,"y":1},"dst":{"x":14,"y":14}}`

const validPlan = `{"grid":{"w":16,"h":16,"pitch_mm":0.25},
  "nets":[{"name":"a","src":{"x":1,"y":1},"dst":{"x":14,"y":14},"src_period_ps":500,"dst_period_ps":500}]}`

func TestDecodeRouteRequestValid(t *testing.T) {
	req, err := DecodeRouteRequest(strings.NewReader(validRoute))
	if err != nil {
		t.Fatal(err)
	}
	if req.Kind != "rbp" || req.PeriodPS != 500 || req.Dst != (Point{14, 14}) {
		t.Errorf("decoded %+v", req)
	}
}

func TestDecodeRouteRequestRejects(t *testing.T) {
	cases := map[string]string{
		"empty body":         ``,
		"not json":           `bogus`,
		"wrong top type":     `[1,2]`,
		"null":               `null`,
		"unknown field":      `{"grid":{"w":4,"h":4,"pitch_mm":1},"kind":"rbp","period_ps":500,"src":{"x":0,"y":0},"dst":{"x":3,"y":3},"surprise":1}`,
		"trailing data":      validRoute + ` {"again":true}`,
		"missing kind":       `{"grid":{"w":4,"h":4,"pitch_mm":1},"src":{"x":0,"y":0},"dst":{"x":3,"y":3}}`,
		"bad kind":           `{"grid":{"w":4,"h":4,"pitch_mm":1},"kind":"magic","src":{"x":0,"y":0},"dst":{"x":3,"y":3}}`,
		"rbp without period": `{"grid":{"w":4,"h":4,"pitch_mm":1},"kind":"rbp","src":{"x":0,"y":0},"dst":{"x":3,"y":3}}`,
		"gals one period":    `{"grid":{"w":4,"h":4,"pitch_mm":1},"kind":"gals","src_period_ps":500,"src":{"x":0,"y":0},"dst":{"x":3,"y":3}}`,
		"tiny grid":          `{"grid":{"w":1,"h":1,"pitch_mm":1},"kind":"fastpath","src":{"x":0,"y":0},"dst":{"x":0,"y":0}}`,
		"huge grid":          `{"grid":{"w":100000,"h":100000,"pitch_mm":0.1},"kind":"fastpath","src":{"x":0,"y":0},"dst":{"x":9,"y":9}}`,
		"zero pitch":         `{"grid":{"w":4,"h":4,"pitch_mm":0},"kind":"fastpath","src":{"x":0,"y":0},"dst":{"x":3,"y":3}}`,
		"off-grid endpoint":  `{"grid":{"w":4,"h":4,"pitch_mm":1},"kind":"fastpath","src":{"x":0,"y":0},"dst":{"x":9,"y":9}}`,
		"src equals dst":     `{"grid":{"w":4,"h":4,"pitch_mm":1},"kind":"fastpath","src":{"x":1,"y":1},"dst":{"x":1,"y":1}}`,
		"negative timeout":   `{"grid":{"w":4,"h":4,"pitch_mm":1},"kind":"fastpath","src":{"x":0,"y":0},"dst":{"x":3,"y":3},"timeout_ms":-5}`,
		"negative budget":    `{"grid":{"w":4,"h":4,"pitch_mm":1},"kind":"fastpath","src":{"x":0,"y":0},"dst":{"x":3,"y":3},"max_configs":-1}`,
		"huge coordinate":    `{"grid":{"w":4,"h":4,"pitch_mm":1,"obstacles":[{"x0":99999999,"y0":0,"x1":0,"y1":0}]},"kind":"fastpath","src":{"x":0,"y":0},"dst":{"x":3,"y":3}}`,
	}
	for name, body := range cases {
		if _, err := DecodeRouteRequest(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodePlanRequestValid(t *testing.T) {
	req, err := DecodePlanRequest(strings.NewReader(validPlan))
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Nets) != 1 || req.Nets[0].Name != "a" {
		t.Errorf("decoded %+v", req)
	}
}

func TestDecodePlanRequestRejects(t *testing.T) {
	cases := map[string]string{
		"no nets":        `{"grid":{"w":4,"h":4,"pitch_mm":1},"nets":[]}`,
		"empty name":     `{"grid":{"w":4,"h":4,"pitch_mm":1},"nets":[{"name":"","src":{"x":0,"y":0},"dst":{"x":3,"y":3},"src_period_ps":500,"dst_period_ps":500}]}`,
		"duplicate name": `{"grid":{"w":4,"h":4,"pitch_mm":1},"nets":[{"name":"a","src":{"x":0,"y":0},"dst":{"x":3,"y":3},"src_period_ps":500,"dst_period_ps":500},{"name":"a","src":{"x":0,"y":1},"dst":{"x":3,"y":2},"src_period_ps":500,"dst_period_ps":500}]}`,
		"zero period":    `{"grid":{"w":4,"h":4,"pitch_mm":1},"nets":[{"name":"a","src":{"x":0,"y":0},"dst":{"x":3,"y":3},"src_period_ps":0,"dst_period_ps":500}]}`,
		"bad width":      `{"grid":{"w":4,"h":4,"pitch_mm":1},"nets":[{"name":"a","src":{"x":0,"y":0},"dst":{"x":3,"y":3},"src_period_ps":500,"dst_period_ps":500,"wire_widths":[0]}]}`,
		"negative workers": `{"grid":{"w":4,"h":4,"pitch_mm":1},"workers":-1,
		  "nets":[{"name":"a","src":{"x":0,"y":0},"dst":{"x":3,"y":3},"src_period_ps":500,"dst_period_ps":500}]}`,
	}
	for name, body := range cases {
		if _, err := DecodePlanRequest(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeOversizedBody(t *testing.T) {
	// A syntactically valid body padded past MaxRequestBytes must be
	// rejected, not decoded.
	huge := `{"grid":{"w":4,"h":4,"pitch_mm":1},"kind":"fastpath","src":{"x":0,"y":0},"dst":{"x":3,"y":3}}`
	pad := strings.Repeat(" ", MaxRequestBytes)
	if _, err := DecodeRouteRequest(strings.NewReader(pad + huge)); err == nil {
		t.Error("oversized body accepted")
	}
}
