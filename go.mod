module clockroute

go 1.22
