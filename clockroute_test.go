package clockroute_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"clockroute"
)

func TestPublicAPIEndToEndRBP(t *testing.T) {
	g := clockroute.NewGrid(41, 11, 0.5)
	g.AddObstacle(clockroute.R(10, 3, 20, 8))
	tc := clockroute.DefaultTech()
	prob, err := clockroute.NewProblem(g, tc, clockroute.Pt(0, 5), clockroute.Pt(40, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := clockroute.RBP(prob, 400, clockroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := clockroute.VerifySingleClock(res.Path, g, tc, 400)
	if err != nil {
		t.Fatal(err)
	}
	if lat != res.Latency {
		t.Errorf("verified %g != reported %g", lat, res.Latency)
	}
	alt, err := clockroute.RBPArrayQueues(prob, 400, clockroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if alt.Latency != res.Latency {
		t.Errorf("array-of-queues variant disagrees: %g vs %g", alt.Latency, res.Latency)
	}
}

func TestPublicAPIEndToEndGALS(t *testing.T) {
	g := clockroute.NewGrid(41, 5, 0.5)
	tc := clockroute.DefaultTech()
	prob, err := clockroute.NewProblem(g, tc, clockroute.Pt(0, 2), clockroute.Pt(40, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := clockroute.GALS(prob, 300, 250, clockroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clockroute.VerifyMultiClock(res.Path, g, tc, 300, 250); err != nil {
		t.Fatal(err)
	}

	// Drive the routed channel through the behavioral MCFIFO simulation.
	cfg, err := clockroute.FIFOFromResult(res, 300, 250, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := clockroute.NewFIFOChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkts, _, err := ch.Simulate(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := pkts[0].ReceivedAt - pkts[0].LaunchedAt
	if first > res.Latency+1e-9 || first <= res.Latency-250-1e-9 {
		t.Errorf("simulated first-word latency %g outside (model-Tt, model] with model %g", first, res.Latency)
	}
}

func TestPublicAPIFastPathAndErrNoPath(t *testing.T) {
	g := clockroute.NewGrid(21, 21, 0.5)
	tc := clockroute.DefaultTech()
	prob, err := clockroute.NewProblem(g, tc, clockroute.Pt(0, 0), clockroute.Pt(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := clockroute.FastPath(prob, clockroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Registers != 0 || fp.Latency <= 0 {
		t.Errorf("fastpath result: %+v", fp)
	}

	walled := clockroute.NewGrid(21, 21, 0.5)
	walled.AddWiringBlockage(clockroute.R(10, 0, 11, 21))
	prob2, err := clockroute.NewProblem(walled, tc, clockroute.Pt(0, 10), clockroute.Pt(20, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clockroute.RBP(prob2, 500, clockroute.Options{}); !errors.Is(err, clockroute.ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestPublicAPIPlannerFlow(t *testing.T) {
	fp, err := clockroute.SoC25mm(0.5)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := clockroute.NewPlanner(fp, clockroute.DefaultTech(), clockroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	net, err := clockroute.NetBetween(fp, "cpu-dsp", "cpu", clockroute.SideEast, "dsp", clockroute.SideWest, 400)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.PlanNets([]clockroute.NetSpec{net})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Failed()) != 0 {
		t.Fatalf("failures: %+v", plan.Failed())
	}
	var buf bytes.Buffer
	if err := plan.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cpu-dsp") {
		t.Error("report missing the net")
	}
}

func TestPublicAPIWavefrontRecorder(t *testing.T) {
	g := clockroute.NewGrid(31, 5, 0.5)
	tc := clockroute.DefaultTech()
	prob, err := clockroute.NewProblem(g, tc, clockroute.Pt(0, 2), clockroute.Pt(30, 2))
	if err != nil {
		t.Fatal(err)
	}
	rec := clockroute.NewWavefrontRecorder(g)
	res, err := clockroute.RBP(prob, 300, clockroute.Options{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Waves() != res.Registers+1 {
		t.Errorf("waves = %d, want %d", rec.Waves(), res.Registers+1)
	}
	var buf bytes.Buffer
	if err := rec.Render(&buf, res.Path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S") || !strings.Contains(buf.String(), "T") {
		t.Error("render missing endpoints")
	}
}

func TestPublicAPIRandomFloorplan(t *testing.T) {
	fp, err := clockroute.RandomFloorplan(3, 40, 40, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.BuildGrid(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPITelemetry exercises the observability re-exports end to
// end: a JSONL + ring + metrics fan-out observing a facade-level Route.
func TestPublicAPITelemetry(t *testing.T) {
	g := clockroute.NewGrid(41, 5, 0.5)
	tc := clockroute.DefaultTech()
	prob, err := clockroute.NewProblem(g, tc, clockroute.Pt(0, 2), clockroute.Pt(40, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jsonl := clockroute.NewJSONLSink(&buf)
	ring := clockroute.NewRingSink(64)
	metrics := clockroute.NewMetrics()
	res, err := clockroute.Route(context.Background(), prob, clockroute.Request{
		Kind: clockroute.KindRBP, PeriodPS: 400,
		Options: clockroute.Options{Telemetry: clockroute.MultiSink(jsonl, ring, metrics)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines < 3 || ring.Len() != lines {
		t.Errorf("JSONL wrote %d events, ring holds %d; want >=3 and equal", lines, ring.Len())
	}
	if !strings.Contains(buf.String(), `"kind":"search_end"`) {
		t.Error("trace missing the search_end span")
	}
	if got := metrics.Configs.Value(); got != int64(res.Stats.Configs) {
		t.Errorf("metrics saw %d configs, result has %d", got, res.Stats.Configs)
	}
	if clockroute.DefaultMetrics() == nil {
		t.Error("DefaultMetrics must return the process registry")
	}
	if clockroute.MultiSink() != nil {
		t.Error("empty MultiSink must collapse to nil (the free path)")
	}
}

func TestFIFOFromResultRejectsNonGALS(t *testing.T) {
	if _, err := clockroute.FIFOFromResult(nil, 300, 300, 2); err == nil {
		t.Error("nil result must fail")
	}
	g := clockroute.NewGrid(21, 3, 0.5)
	prob, err := clockroute.NewProblem(g, clockroute.DefaultTech(), clockroute.Pt(0, 1), clockroute.Pt(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	rbp, err := clockroute.RBP(prob, 500, clockroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clockroute.FIFOFromResult(rbp, 300, 300, 2); err == nil {
		t.Error("RBP result has no FIFO and must be rejected")
	}
}

func TestDefaultTechIsValid(t *testing.T) {
	tc := clockroute.DefaultTech()
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(tc.MinBufferR()) || tc.MinBufferR() <= 0 {
		t.Error("MinBufferR broken")
	}
}
