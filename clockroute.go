// Package clockroute is a library for optimal path routing in single- and
// multiple-clock domain systems-on-chip, reproducing Hassoun & Alpert,
// "Optimal Path Routing in Single- and Multiple-Clock Domain Systems"
// (IEEE TCAD, 2003).
//
// It finds source-to-sink routes on a grid over the chip while
// simultaneously inserting buffers and synchronization elements:
//
//   - FastPath — minimum Elmore-delay buffered routing (the Zhou et al.
//     baseline the paper builds on);
//   - RBP — minimum cycle-latency routing with registers for a single clock
//     domain: every register-to-register segment meets the clock period;
//   - GALS — minimum-latency routing between two clock domains through a
//     mixed-clock FIFO, with relay stations on both sides.
//
// All three are optimal polynomial-time dynamic programs. The package also
// provides the surrounding system: technology/delay models, floorplan-driven
// blockage maps, an interconnect planner producing RTL latency annotations,
// a cycle-accurate behavioral simulation of the MCFIFO/relay-station
// substrate, and an experiment harness regenerating the paper's tables.
//
// # Quick start
//
//	g := clockroute.NewGrid(201, 201, 0.125)          // 25 mm die
//	g.AddObstacle(clockroute.R(40, 40, 80, 80))        // an IP macro
//	tech := clockroute.DefaultTech()                   // calibrated 0.07 µm
//	prob, _ := clockroute.NewProblem(g, tech, clockroute.Pt(20, 20), clockroute.Pt(180, 180))
//	res, _ := clockroute.RBP(prob, 500 /*ps*/, clockroute.Options{})
//	fmt.Println(res.Latency, res.Registers, res.Path)
//
// See the examples directory for runnable scenarios.
package clockroute

import (
	"clockroute/internal/candidate"
	"clockroute/internal/core"
	"clockroute/internal/elmore"
	"clockroute/internal/floorplan"
	"clockroute/internal/geom"
	"clockroute/internal/grid"
	"clockroute/internal/latch"
	"clockroute/internal/mcfifo"
	"clockroute/internal/planner"
	"clockroute/internal/route"
	"clockroute/internal/tech"
	"clockroute/internal/wavefront"
)

// Core geometry and grid types.
type (
	// Point is an integer grid coordinate.
	Point = geom.Point
	// Rect is a half-open rectangle of grid points.
	Rect = geom.Rect
	// Grid is the routing graph with blockage maps.
	Grid = grid.Grid
)

// Technology and delay modeling.
type (
	// Tech bundles the wire RC model and the element library.
	Tech = tech.Tech
	// Element is the switch-level model of a buffer, register, or MCFIFO.
	Element = tech.Element
	// Model evaluates Elmore delays for a technology at a grid pitch.
	Model = elmore.Model
)

// Routing problem and results.
type (
	// Problem is a routing instance: grid, model, source, sink.
	Problem = core.Problem
	// Options tunes a search run; the zero value is the published setup.
	Options = core.Options
	// Result is a routing outcome with its statistics.
	Result = core.Result
	// Stats records search effort (configurations, queue sizes, time).
	Stats = core.Stats
	// Path is the routed node sequence with its element labeling.
	Path = route.Path
	// Gate labels one inserted element on a path.
	Gate = candidate.Gate
	// Tracer observes wavefront expansion (see wavefront.Recorder).
	Tracer = core.Tracer
)

// System-level components.
type (
	// Floorplan places IP blocks whose shadows become routing blockages.
	Floorplan = floorplan.Floorplan
	// Block is one floorplan component.
	Block = floorplan.Block
	// Planner routes block-to-block nets over a floorplan.
	Planner = planner.Planner
	// NetSpec requests one point-to-point net.
	NetSpec = planner.NetSpec
	// Plan is a set of routed nets with a latency report.
	Plan = planner.Plan
	// FIFOChannel simulates the MCFIFO/relay-station substrate.
	FIFOChannel = mcfifo.Channel
	// FIFOConfig configures a FIFOChannel.
	FIFOConfig = mcfifo.Config
	// WavefrontRecorder records expansion waves for visualization.
	WavefrontRecorder = wavefront.Recorder
)

// ErrNoPath is returned when no feasible routing solution exists.
var ErrNoPath = core.ErrNoPath

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return geom.Pt(x, y) }

// R builds a Rect from two corners in any order.
func R(x0, y0, x1, y1 int) Rect { return geom.R(x0, y0, x1, y1) }

// NewGrid returns an open w×h routing grid with the given pitch in mm.
// It panics on invalid dimensions; use grid sizes of at least 2×1 and a
// positive pitch.
func NewGrid(w, h int, pitchMM float64) *Grid { return grid.MustNew(w, h, pitchMM) }

// DefaultTech returns the calibrated 0.07 µm technology of the paper's
// experiments (Cong–Pan estimates; see DESIGN.md for the calibration).
func DefaultTech() *Tech { return tech.CongPan70nm() }

// NewProblem builds a routing instance on g between the source and sink
// grid points, deriving the delay model from tc at g's pitch.
func NewProblem(g *Grid, tc *Tech, src, dst Point) (*Problem, error) {
	m, err := elmore.NewModel(tc, g.PitchMM())
	if err != nil {
		return nil, err
	}
	return core.NewProblem(g, m, g.ID(src), g.ID(dst))
}

// FastPath finds the minimum-delay buffered path (no registers).
func FastPath(p *Problem, opts Options) (*Result, error) { return core.FastPath(p, opts) }

// RBP finds the minimum cycle-latency registered-buffered path for a single
// clock domain with period T (in ps).
func RBP(p *Problem, T float64, opts Options) (*Result, error) { return core.RBP(p, T, opts) }

// RBPArrayQueues is RBP's array-of-queues variant (identical results).
func RBPArrayQueues(p *Problem, T float64, opts Options) (*Result, error) {
	return core.RBPArrayQueues(p, T, opts)
}

// GALS finds the minimum-latency path between a source clocked at Ts and a
// sink clocked at Tt, inserting exactly one mixed-clock FIFO.
func GALS(p *Problem, Ts, Tt float64, opts Options) (*Result, error) {
	return core.GALS(p, Ts, Tt, opts)
}

// LatchResult reports a transparent-latch route (the latch-based routing
// extension; see internal/latch).
type LatchResult = latch.Result

// LatchRoute finds the minimum-latency buffered path synchronized with
// two-phase transparent latches instead of registers, exploiting time
// borrowing. maxCycles bounds the latency search (0 = default).
func LatchRoute(p *Problem, T float64, maxCycles int, opts Options) (*LatchResult, error) {
	return latch.Route(p, T, p.Model.Tech().Latch(), maxCycles, opts)
}

// VerifyLatch independently re-checks a latch route by forward simulation
// of the transparency windows.
func VerifyLatch(p *Path, g *Grid, tc *Tech, T float64, cycles int) error {
	m, err := elmore.NewModel(tc, g.PitchMM())
	if err != nil {
		return err
	}
	return latch.Verify(p, g, m, T, cycles)
}

// VerifySingleClock independently re-checks an RBP result against the grid
// and period, returning the verified cycle latency.
func VerifySingleClock(p *Path, g *Grid, tc *Tech, T float64) (float64, error) {
	m, err := elmore.NewModel(tc, g.PitchMM())
	if err != nil {
		return 0, err
	}
	return route.VerifySingleClock(p, g, m, T)
}

// VerifyMultiClock independently re-checks a GALS result, returning the
// verified total latency.
func VerifyMultiClock(p *Path, g *Grid, tc *Tech, Ts, Tt float64) (float64, error) {
	m, err := elmore.NewModel(tc, g.PitchMM())
	if err != nil {
		return 0, err
	}
	return route.VerifyMultiClock(p, g, m, Ts, Tt)
}

// NewPlanner builds an interconnect planner over a floorplan.
func NewPlanner(fp *Floorplan, tc *Tech, opts Options) (*Planner, error) {
	return planner.New(fp, tc, opts)
}

// NetBetween builds a NetSpec connecting two block ports, inferring clock
// periods from the floorplan (defaultPeriod for chip-clocked blocks).
func NetBetween(fp *Floorplan, name string, fromBlock string, fromSide BlockSide,
	toBlock string, toSide BlockSide, defaultPeriod float64) (NetSpec, error) {
	return planner.NetBetween(fp, name,
		planner.Endpoint{Block: fromBlock, Side: fromSide},
		planner.Endpoint{Block: toBlock, Side: toSide}, defaultPeriod)
}

// BlockSide selects a block boundary for pin placement.
type BlockSide = floorplan.Side

// Block boundary sides.
const (
	SideEast  = floorplan.SideEast
	SideWest  = floorplan.SideWest
	SideNorth = floorplan.SideNorth
	SideSouth = floorplan.SideSouth
)

// Floorplan block kinds.
const (
	// HardIP blocks gate insertion; wires may pass over.
	HardIP = floorplan.HardIP
	// WiringDense blocks routing entirely.
	WiringDense = floorplan.WiringDense
	// ClockQuiet forbids clocked elements only.
	ClockQuiet = floorplan.ClockQuiet
)

// SoC25mm returns the paper's 25×25 mm experimental die with a
// representative set of IP blocks at the given grid pitch.
func SoC25mm(pitchMM float64) (*Floorplan, error) { return floorplan.SoC25mm(pitchMM) }

// RandomFloorplan generates a seeded random floorplan with n blocks.
func RandomFloorplan(seed int64, gridW, gridH int, pitchMM float64, n int) (*Floorplan, error) {
	return floorplan.Random(seed, gridW, gridH, pitchMM, n)
}

// NewFIFOChannel builds a behavioral mixed-clock channel simulation.
func NewFIFOChannel(cfg FIFOConfig) (*FIFOChannel, error) { return mcfifo.New(cfg) }

// FIFOFromResult derives the channel configuration that a GALS routing
// result implies: its per-side relay-station counts and the two periods.
func FIFOFromResult(res *Result, Ts, Tt float64, depth int) (FIFOConfig, error) {
	if res == nil || res.Path == nil || res.Path.FIFOIndex() < 0 {
		return FIFOConfig{}, ErrNoPath
	}
	regS, regT := res.Path.RegistersBySide()
	cfg := FIFOConfig{
		Ts: Ts, Tt: Tt,
		SenderStations:   regS,
		ReceiverStations: regT,
		FIFODepth:        depth,
	}
	return cfg, cfg.Validate()
}

// NewWavefrontRecorder builds a tracer that records which wave first
// reached every node; pass it via Options.Trace and render with its
// Render/Summary methods.
func NewWavefrontRecorder(g *Grid) *WavefrontRecorder { return wavefront.NewRecorder(g) }
