// Package clockroute is a library for optimal path routing in single- and
// multiple-clock domain systems-on-chip, reproducing Hassoun & Alpert,
// "Optimal Path Routing in Single- and Multiple-Clock Domain Systems"
// (IEEE TCAD, 2003).
//
// It finds source-to-sink routes on a grid over the chip while
// simultaneously inserting buffers and synchronization elements:
//
//   - FastPath — minimum Elmore-delay buffered routing (the Zhou et al.
//     baseline the paper builds on);
//   - RBP — minimum cycle-latency routing with registers for a single clock
//     domain: every register-to-register segment meets the clock period;
//   - GALS — minimum-latency routing between two clock domains through a
//     mixed-clock FIFO, with relay stations on both sides.
//
// All three are optimal polynomial-time dynamic programs. The package also
// provides the surrounding system: technology/delay models, floorplan-driven
// blockage maps, an interconnect planner producing RTL latency annotations,
// a cycle-accurate behavioral simulation of the MCFIFO/relay-station
// substrate, and an experiment harness regenerating the paper's tables.
//
// # Quick start
//
//	g := clockroute.NewGrid(201, 201, 0.125)          // 25 mm die
//	g.AddObstacle(clockroute.R(40, 40, 80, 80))        // an IP macro
//	tech := clockroute.DefaultTech()                   // calibrated 0.07 µm
//	prob, _ := clockroute.NewProblem(g, tech, clockroute.Pt(20, 20), clockroute.Pt(180, 180))
//	res, _ := clockroute.RBP(prob, 500 /*ps*/, clockroute.Options{})
//	fmt.Println(res.Latency, res.Registers, res.Path)
//
// # Unified Route API
//
// The three algorithms share one context-aware entry point. A Request
// selects the algorithm by Kind and carries its clock parameters; Route
// threads the context's deadline and cancellation into the search's
// wavefront loops, so a routing call can be time-bounded:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
//	defer cancel()
//	res, err := clockroute.Route(ctx, prob, clockroute.Request{
//		Kind: clockroute.KindRBP, PeriodPS: 500,
//	})
//	if errors.Is(err, clockroute.ErrAborted) { /* ran out of time, not infeasible */ }
//
// FastPath, RBP, and GALS remain as thin context-free wrappers over Route.
// An aborted search — context cancellation, Options.Deadline, the
// Options.Abort hook, or the Options.MaxConfigs budget — reports
// ErrAborted, distinct from ErrNoPath's genuine infeasibility.
//
// # Concurrency
//
// Grids, delay models, and Problems are read-only during a search, so any
// number of searches may run concurrently over shared inputs. The Planner
// exploits this: Planner.RunParallel routes a batch of nets across a
// worker pool with results bit-identical to the serial run. See the
// "Concurrency model" section of DESIGN.md.
//
// See the examples directory for runnable scenarios.
package clockroute

import (
	"context"
	"io"

	"clockroute/internal/candidate"
	"clockroute/internal/core"
	"clockroute/internal/elmore"
	"clockroute/internal/floorplan"
	"clockroute/internal/geom"
	"clockroute/internal/grid"
	"clockroute/internal/latch"
	"clockroute/internal/mcfifo"
	"clockroute/internal/planner"
	"clockroute/internal/route"
	"clockroute/internal/tech"
	"clockroute/internal/telemetry"
	"clockroute/internal/wavefront"
)

// Core geometry and grid types.
type (
	// Point is an integer grid coordinate.
	Point = geom.Point
	// Rect is a half-open rectangle of grid points.
	Rect = geom.Rect
	// Grid is the routing graph with blockage maps.
	Grid = grid.Grid
)

// Technology and delay modeling.
type (
	// Tech bundles the wire RC model and the element library.
	Tech = tech.Tech
	// Element is the switch-level model of a buffer, register, or MCFIFO.
	Element = tech.Element
	// Model evaluates Elmore delays for a technology at a grid pitch.
	Model = elmore.Model
)

// Routing problem and results.
type (
	// Problem is a routing instance: grid, model, source, sink.
	Problem = core.Problem
	// Options tunes a search run; the zero value is the published setup.
	Options = core.Options
	// Result is a routing outcome with its statistics.
	Result = core.Result
	// Stats records search effort (configurations, queue sizes, time).
	Stats = core.Stats
	// Path is the routed node sequence with its element labeling.
	Path = route.Path
	// Gate labels one inserted element on a path.
	Gate = candidate.Gate
	// Tracer observes wavefront expansion (see wavefront.Recorder).
	Tracer = core.Tracer
	// Request selects an algorithm and its parameters for Route.
	Request = core.Request
	// RouteKind identifies one of the three algorithms in a Request.
	RouteKind = core.Kind
)

// Request kinds for the unified Route call.
const (
	// KindFastPath is minimum-delay buffered routing (no registers).
	KindFastPath = core.KindFastPath
	// KindRBP is single-clock registered-buffered routing.
	KindRBP = core.KindRBP
	// KindGALS is cross-domain routing through one mixed-clock FIFO.
	KindGALS = core.KindGALS
)

// System-level components.
type (
	// Floorplan places IP blocks whose shadows become routing blockages.
	Floorplan = floorplan.Floorplan
	// Block is one floorplan component.
	Block = floorplan.Block
	// Planner routes block-to-block nets over a floorplan.
	Planner = planner.Planner
	// NetSpec requests one point-to-point net.
	NetSpec = planner.NetSpec
	// Plan is a set of routed nets with a latency report.
	Plan = planner.Plan
	// PlanStats aggregates search effort across a plan's nets.
	PlanStats = planner.PlanStats
	// FIFOChannel simulates the MCFIFO/relay-station substrate.
	FIFOChannel = mcfifo.Channel
	// FIFOConfig configures a FIFOChannel.
	FIFOConfig = mcfifo.Config
	// WavefrontRecorder records expansion waves for visualization.
	WavefrontRecorder = wavefront.Recorder
)

// ErrNoPath is returned when no feasible routing solution exists.
var ErrNoPath = core.ErrNoPath

// ErrAborted is returned when a search stops before exhausting its space —
// context cancellation, a passed Options.Deadline, the Options.Abort hook,
// or the Options.MaxConfigs budget. Use errors.Is to distinguish it from
// ErrNoPath: an aborted search says nothing about feasibility.
var ErrAborted = core.ErrAborted

// ErrInternal is returned when a search died in a contained panic (a bug
// or an injected fault): the search's pooled scratch was quarantined and
// the process kept running. The concrete *core.InternalError in the chain
// carries the panicking stack. Like ErrAborted, it says nothing about
// feasibility — the planner retries such nets once on a fresh scratch.
var ErrInternal = core.ErrInternal

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return geom.Pt(x, y) }

// R builds a Rect from two corners in any order.
func R(x0, y0, x1, y1 int) Rect { return geom.R(x0, y0, x1, y1) }

// NewGrid returns an open w×h routing grid with the given pitch in mm.
// It panics on invalid dimensions; use grid sizes of at least 2×1 and a
// positive pitch.
func NewGrid(w, h int, pitchMM float64) *Grid { return grid.MustNew(w, h, pitchMM) }

// DefaultTech returns the calibrated 0.07 µm technology of the paper's
// experiments (Cong–Pan estimates; see DESIGN.md for the calibration).
func DefaultTech() *Tech { return tech.CongPan70nm() }

// NewProblem builds a routing instance on g between the source and sink
// grid points, deriving the delay model from tc at g's pitch.
func NewProblem(g *Grid, tc *Tech, src, dst Point) (*Problem, error) {
	m, err := elmore.NewModel(tc, g.PitchMM())
	if err != nil {
		return nil, err
	}
	return core.NewProblem(g, m, g.ID(src), g.ID(dst))
}

// Route runs the algorithm selected by req on p, threading ctx's deadline
// and cancellation into the search loops (see ErrAborted). It is the
// unified entry point behind FastPath, RBP, and GALS.
func Route(ctx context.Context, p *Problem, req Request) (*Result, error) {
	return core.Route(ctx, p, req)
}

// FastPath finds the minimum-delay buffered path (no registers).
func FastPath(p *Problem, opts Options) (*Result, error) {
	return core.Route(context.Background(), p, Request{Kind: KindFastPath, Options: opts})
}

// RBP finds the minimum cycle-latency registered-buffered path for a single
// clock domain with period T (in ps).
func RBP(p *Problem, T float64, opts Options) (*Result, error) {
	return core.Route(context.Background(), p, Request{Kind: KindRBP, PeriodPS: T, Options: opts})
}

// RBPArrayQueues is RBP's array-of-queues variant (identical results).
func RBPArrayQueues(p *Problem, T float64, opts Options) (*Result, error) {
	return core.Route(context.Background(), p,
		Request{Kind: KindRBP, PeriodPS: T, ArrayQueues: true, Options: opts})
}

// GALS finds the minimum-latency path between a source clocked at Ts and a
// sink clocked at Tt, inserting exactly one mixed-clock FIFO.
func GALS(p *Problem, Ts, Tt float64, opts Options) (*Result, error) {
	return core.Route(context.Background(), p,
		Request{Kind: KindGALS, SrcPeriodPS: Ts, DstPeriodPS: Tt, Options: opts})
}

// RoutePlanContext routes every net of specs over pl's floorplan with up to
// `workers` concurrent searches (<= 0 selects GOMAXPROCS), honoring ctx's
// deadline and cancellation per net. Results keep the order of specs and
// match a serial Planner.PlanNets run exactly; see Planner.RunParallel.
func RoutePlanContext(ctx context.Context, pl *Planner, specs []NetSpec, workers int) (*Plan, error) {
	return pl.RunParallel(ctx, workers, specs)
}

// LatchResult reports a transparent-latch route (the latch-based routing
// extension; see internal/latch).
type LatchResult = latch.Result

// LatchRoute finds the minimum-latency buffered path synchronized with
// two-phase transparent latches instead of registers, exploiting time
// borrowing. maxCycles bounds the latency search (0 = default).
func LatchRoute(p *Problem, T float64, maxCycles int, opts Options) (*LatchResult, error) {
	return latch.Route(p, T, p.Model.Tech().Latch(), maxCycles, opts)
}

// VerifyLatch independently re-checks a latch route by forward simulation
// of the transparency windows.
func VerifyLatch(p *Path, g *Grid, tc *Tech, T float64, cycles int) error {
	m, err := elmore.NewModel(tc, g.PitchMM())
	if err != nil {
		return err
	}
	return latch.Verify(p, g, m, T, cycles)
}

// VerifySingleClock independently re-checks an RBP result against the grid
// and period, returning the verified cycle latency.
func VerifySingleClock(p *Path, g *Grid, tc *Tech, T float64) (float64, error) {
	m, err := elmore.NewModel(tc, g.PitchMM())
	if err != nil {
		return 0, err
	}
	return route.VerifySingleClock(p, g, m, T)
}

// VerifyMultiClock independently re-checks a GALS result, returning the
// verified total latency.
func VerifyMultiClock(p *Path, g *Grid, tc *Tech, Ts, Tt float64) (float64, error) {
	m, err := elmore.NewModel(tc, g.PitchMM())
	if err != nil {
		return 0, err
	}
	return route.VerifyMultiClock(p, g, m, Ts, Tt)
}

// NewPlanner builds an interconnect planner over a floorplan.
func NewPlanner(fp *Floorplan, tc *Tech, opts Options) (*Planner, error) {
	return planner.New(fp, tc, opts)
}

// NetBetween builds a NetSpec connecting two block ports, inferring clock
// periods from the floorplan (defaultPeriod for chip-clocked blocks).
func NetBetween(fp *Floorplan, name string, fromBlock string, fromSide BlockSide,
	toBlock string, toSide BlockSide, defaultPeriod float64) (NetSpec, error) {
	return planner.NetBetween(fp, name,
		planner.Endpoint{Block: fromBlock, Side: fromSide},
		planner.Endpoint{Block: toBlock, Side: toSide}, defaultPeriod)
}

// BlockSide selects a block boundary for pin placement.
type BlockSide = floorplan.Side

// Block boundary sides.
const (
	SideEast  = floorplan.SideEast
	SideWest  = floorplan.SideWest
	SideNorth = floorplan.SideNorth
	SideSouth = floorplan.SideSouth
)

// Floorplan block kinds.
const (
	// HardIP blocks gate insertion; wires may pass over.
	HardIP = floorplan.HardIP
	// WiringDense blocks routing entirely.
	WiringDense = floorplan.WiringDense
	// ClockQuiet forbids clocked elements only.
	ClockQuiet = floorplan.ClockQuiet
)

// SoC25mm returns the paper's 25×25 mm experimental die with a
// representative set of IP blocks at the given grid pitch.
func SoC25mm(pitchMM float64) (*Floorplan, error) { return floorplan.SoC25mm(pitchMM) }

// RandomFloorplan generates a seeded random floorplan with n blocks.
func RandomFloorplan(seed int64, gridW, gridH int, pitchMM float64, n int) (*Floorplan, error) {
	return floorplan.Random(seed, gridW, gridH, pitchMM, n)
}

// NewFIFOChannel builds a behavioral mixed-clock channel simulation.
func NewFIFOChannel(cfg FIFOConfig) (*FIFOChannel, error) { return mcfifo.New(cfg) }

// FIFOFromResult derives the channel configuration that a GALS routing
// result implies: its per-side relay-station counts and the two periods.
func FIFOFromResult(res *Result, Ts, Tt float64, depth int) (FIFOConfig, error) {
	if res == nil || res.Path == nil || res.Path.FIFOIndex() < 0 {
		return FIFOConfig{}, ErrNoPath
	}
	regS, regT := res.Path.RegistersBySide()
	cfg := FIFOConfig{
		Ts: Ts, Tt: Tt,
		SenderStations:   regS,
		ReceiverStations: regT,
		FIFODepth:        depth,
	}
	return cfg, cfg.Validate()
}

// NewWavefrontRecorder builds a tracer that records which wave first
// reached every node; pass it via Options.Trace and render with its
// Render/Summary methods.
func NewWavefrontRecorder(g *Grid) *WavefrontRecorder { return wavefront.NewRecorder(g) }

// Observability. Options.Telemetry accepts any TelemetrySink; the sinks
// below compose with Route, Planner.RunParallel, and the CLIs'
// -metrics-addr endpoints. See the "Observability" section of DESIGN.md
// for the event schema and metric names.
type (
	// TelemetrySink receives structured span events (searches, wavefronts,
	// batch nets). Implementations must be goroutine-safe.
	TelemetrySink = telemetry.Sink
	// TelemetryEvent is one record of the trace stream.
	TelemetryEvent = telemetry.Event
	// TelemetryEventKind discriminates trace events.
	TelemetryEventKind = telemetry.EventKind
	// Metrics is the atomic registry of routing counters; it is itself a
	// TelemetrySink and exports via expvar (Publish).
	Metrics = telemetry.Metrics
	// ProgressTracker is a TelemetrySink maintaining an in-flight-net
	// snapshot (the /progress endpoint payload).
	ProgressTracker = telemetry.Progress
)

// NewJSONLSink returns a sink writing one JSON event per line to w,
// sequence-numbered in emission order.
func NewJSONLSink(w io.Writer) *telemetry.JSONL { return telemetry.NewJSONL(w) }

// NewRingSink returns a sink retaining the last n events for post-mortem
// dumps.
func NewRingSink(n int) *telemetry.Ring { return telemetry.NewRing(n) }

// MultiSink broadcasts every event to all given sinks, skipping nils.
func MultiSink(sinks ...TelemetrySink) TelemetrySink { return telemetry.Multi(sinks...) }

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return telemetry.NewMetrics() }

// DefaultMetrics returns the process-wide registry, published to expvar as
// "clockroute" on first use.
func DefaultMetrics() *Metrics { return telemetry.Default() }

// SynchronizedTracer wraps a Tracer so it can be shared across concurrent
// searches (see the Tracer concurrency contract in Options.Trace).
func SynchronizedTracer(t Tracer) Tracer { return core.SynchronizedTracer(t) }
