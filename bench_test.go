// Benchmarks regenerating the paper's evaluation, one target per table and
// figure, plus ablations of the design choices called out in DESIGN.md.
//
// The benchmarks run at the 4×-reduced scale (0.5 mm pitch, 80-edge
// separation) so `go test -bench=.` completes in minutes; `go run
// ./cmd/tables -scale paper` regenerates the full 200×200 configuration,
// recorded in EXPERIMENTS.md. Custom metrics report the paper's effort
// columns: configurations investigated and peak queue size.
package clockroute

import (
	"context"
	"fmt"
	"testing"

	"clockroute/internal/bench"
	"clockroute/internal/core"
	"clockroute/internal/latch"
	"clockroute/internal/mazeroute"
	"clockroute/internal/mcfifo"
	"clockroute/internal/tech"
	"clockroute/internal/telemetry"
	"clockroute/internal/wavefront"
)

func reducedProblem(b *testing.B) *core.Problem {
	b.Helper()
	prob, err := bench.ReducedScale().Build(tech.CongPan70nm())
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

// BenchmarkTableI_FastPath is Table I's first row: the unclocked minimum
// delay baseline (T = ∞).
func BenchmarkTableI_FastPath(b *testing.B) {
	prob := reducedProblem(b)
	var configs, maxq int
	for i := 0; i < b.N; i++ {
		res, err := core.FastPath(prob, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		configs, maxq = res.Stats.Configs, res.Stats.MaxQSize
	}
	b.ReportMetric(float64(configs), "configs/op")
	b.ReportMetric(float64(maxq), "maxQ/op")
}

// BenchmarkTableI_RBP runs one sub-benchmark per Table I row: RBP at the
// fastest period achieving each register count.
func BenchmarkTableI_RBP(b *testing.B) {
	tc := tech.CongPan70nm()
	s := bench.ReducedScale()
	periods, targets, err := bench.FastestPeriods(tc, s, []int{1, 2, 3, 5, 7, 9, 39, 79})
	if err != nil {
		b.Fatal(err)
	}
	prob, err := s.Build(tc)
	if err != nil {
		b.Fatal(err)
	}
	for i, T := range periods {
		b.Run(fmt.Sprintf("regs=%d/T=%.0f", targets[i], T), func(b *testing.B) {
			var configs, maxq int
			for n := 0; n < b.N; n++ {
				res, err := core.RBP(prob, T, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				configs, maxq = res.Stats.Configs, res.Stats.MaxQSize
			}
			b.ReportMetric(float64(configs), "configs/op")
			b.ReportMetric(float64(maxq), "maxQ/op")
		})
	}
}

// BenchmarkTableII runs one sub-benchmark per grid pitch at a fixed period,
// showing the runtime-vs-grid-size trend of Table II.
func BenchmarkTableII_GridSize(b *testing.B) {
	tc := tech.CongPan70nm()
	for _, pitch := range []float64{1.0, 0.5, 0.25} {
		s := bench.PaperScale().WithPitch(pitch)
		prob, err := s.Build(tc)
		if err != nil {
			b.Fatal(err)
		}
		w, h := s.GridDims()
		b.Run(fmt.Sprintf("grid=%dx%d", w, h), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := core.RBP(prob, 343, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableIII_GALS runs one sub-benchmark per (Ts, Tt) pair of
// Table III.
func BenchmarkTableIII_GALS(b *testing.B) {
	prob := reducedProblem(b)
	for _, pair := range bench.TableIIIPairs() {
		b.Run(fmt.Sprintf("Ts=%.0f/Tt=%.0f", pair[0], pair[1]), func(b *testing.B) {
			var configs int
			for n := 0; n < b.N; n++ {
				res, err := core.GALS(prob, pair[0], pair[1], core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				configs = res.Stats.Configs
			}
			b.ReportMetric(float64(configs), "configs/op")
		})
	}
}

// BenchmarkFigure6_Wavefront regenerates the Fig. 6 wave-front expansion
// (RBP with the recorder attached), measuring tracing overhead too.
func BenchmarkFigure6_Wavefront(b *testing.B) {
	prob := reducedProblem(b)
	for i := 0; i < b.N; i++ {
		rec := wavefront.NewRecorder(prob.Grid)
		if _, err := core.RBP(prob, 300, core.Options{Trace: rec}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Pruning quantifies what (c,d) dominance pruning buys:
// the same small instance with pruning on and off.
func BenchmarkAblation_Pruning(b *testing.B) {
	s := bench.ReducedScale().WithPitch(2.0) // tiny reach keeps "off" finite
	prob, err := s.Build(tech.CongPan70nm())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"on", core.Options{}},
		{"off", core.Options{DisablePruning: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var configs int
			for n := 0; n < b.N; n++ {
				res, err := core.RBP(prob, 400, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				configs = res.Stats.Configs
			}
			b.ReportMetric(float64(configs), "configs/op")
		})
	}
}

// BenchmarkAblation_Lookahead measures the edge feasibility look-ahead
// (d' ≤ T − K(r) − min(R)·c') of RBP step 5.
func BenchmarkAblation_Lookahead(b *testing.B) {
	prob := reducedProblem(b)
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"on", core.Options{}},
		{"off", core.Options{DisableLookahead: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var configs int
			for n := 0; n < b.N; n++ {
				res, err := core.RBP(prob, 300, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				configs = res.Stats.Configs
			}
			b.ReportMetric(float64(configs), "configs/op")
		})
	}
}

// BenchmarkAblation_QueueDiscipline compares the published two-queue RBP
// against the array-of-queues alternative of Section III.
func BenchmarkAblation_QueueDiscipline(b *testing.B) {
	prob := reducedProblem(b)
	b.Run("two-queue", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := core.RBP(prob, 300, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("array", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := core.RBPArrayQueues(prob, 300, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_SimultaneousVsRouteFirst compares RBP to the naive
// route-then-insert baseline on the same instance.
func BenchmarkAblation_SimultaneousVsRouteFirst(b *testing.B) {
	prob := reducedProblem(b)
	b.Run("rbp", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := core.RBP(prob, 300, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("route-then-insert", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := mazeroute.Route(prob, 300); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMCFIFO_Simulation measures the behavioral channel substrate:
// packets per second through the relay-station/MCFIFO pipeline.
func BenchmarkMCFIFO_Simulation(b *testing.B) {
	ch, err := mcfifo.New(mcfifo.Config{
		Ts: 200, Tt: 300, SenderStations: 4, ReceiverStations: 3, FIFODepth: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	const pkts = 1000
	for i := 0; i < b.N; i++ {
		if _, _, err := ch.Simulate(pkts, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pkts, "packets/op")
}

// BenchmarkExtension_LatchVsRegister compares the latch-based router (time
// borrowing) against RBP on the same instance — the latch-aware routing
// extension.
func BenchmarkExtension_LatchVsRegister(b *testing.B) {
	prob := reducedProblem(b)
	lt := tech.CongPan70nm().Latch()
	b.Run("rbp", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := core.RBP(prob, 400, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("latch", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := latch.Route(prob, 400, lt, 0, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtension_MaxSlack measures the cost of the 3-D pruning and
// full-wave drain of the max-slack variant.
func BenchmarkExtension_MaxSlack(b *testing.B) {
	prob := reducedProblem(b)
	b.Run("first-found", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := core.RBP(prob, 400, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("max-slack", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := core.RBP(prob, 400, core.Options{MaximizeSlack: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtension_MultiSizeLibrary measures the cost of the 3-size
// buffer library against the paper's single size.
func BenchmarkExtension_MultiSizeLibrary(b *testing.B) {
	s := bench.ReducedScale()
	single, err := s.Build(tech.CongPan70nm())
	if err != nil {
		b.Fatal(err)
	}
	multi, err := s.Build(tech.CongPan70nmMultiSize())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := core.RBP(single, 400, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multi", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := core.RBP(multi, 400, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRBP is the headline single-search benchmark, run through the
// unified Route entry point at each telemetry setting. Run with -benchmem:
// the "off" row is the allocation budget the observability layer must not
// touch (the nil-sink fast path), and the ring/metrics rows price the
// enabled overhead quoted in DESIGN.md.
func BenchmarkRBP(b *testing.B) {
	prob := reducedProblem(b)
	ctx := context.Background()
	run := func(b *testing.B, opts core.Options) {
		b.ReportAllocs()
		var res *core.Result
		for n := 0; n < b.N; n++ {
			var err error
			res, err = core.Route(ctx, prob, core.Request{
				Kind: core.KindRBP, PeriodPS: 300, Options: opts,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Stats.Configs), "configs/op")
		// Routed-result fingerprint: make bench-check compares these against
		// the recorded baseline exactly — any drift fails the gate.
		b.ReportMetric(float64(res.Registers), "registers/op")
		b.ReportMetric(res.Latency, "latency_ps")
	}
	b.Run("telemetry=off", func(b *testing.B) {
		run(b, core.Options{})
	})
	// Pruning isolation: the identical search with admissible bounds off vs
	// on (the default), so BENCH_core.json records the configs/op and
	// time/op win attributable to the bounds alone. Results are proven
	// identical by the equivalence sweeps; only the effort may differ.
	b.Run("bounds=off", func(b *testing.B) {
		run(b, core.Options{DisableBounds: true})
	})
	b.Run("bounds=on", func(b *testing.B) {
		run(b, core.Options{})
	})
	b.Run("telemetry=ring", func(b *testing.B) {
		run(b, core.Options{Telemetry: telemetry.NewRing(4096)})
	})
	b.Run("telemetry=metrics", func(b *testing.B) {
		run(b, core.Options{Telemetry: telemetry.NewMetrics()})
	})
	// The full request-tracing path: every search and wave event lands in a
	// per-request span Recorder, as the service's traced middleware wires it.
	b.Run("telemetry=trace", func(b *testing.B) {
		b.ReportAllocs()
		var res *core.Result
		for n := 0; n < b.N; n++ {
			rec := telemetry.NewRecorder(telemetry.NewTraceContext(), "bench", "bench")
			var err error
			res, err = core.Route(ctx, prob, core.Request{
				Kind: core.KindRBP, PeriodPS: 300, Options: core.Options{Telemetry: rec},
			})
			if err != nil {
				b.Fatal(err)
			}
			rec.Finish(200, nil)
		}
		b.ReportMetric(float64(res.Stats.Configs), "configs/op")
		b.ReportMetric(float64(res.Registers), "registers/op")
		b.ReportMetric(res.Latency, "latency_ps")
	})
}

// BenchmarkFastPath is the unclocked single-search counterpart of
// BenchmarkRBP, tracked in BENCH_core.json alongside it: the minimum-delay
// baseline exercises the same arena/scratch path without wavefronts, so a
// memory-management regression shows up here even if the wave machinery
// masks it in RBP.
func BenchmarkFastPath(b *testing.B) {
	prob := reducedProblem(b)
	b.ReportAllocs()
	var configs int
	for n := 0; n < b.N; n++ {
		res, err := core.FastPath(prob, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		configs = res.Stats.Configs
	}
	b.ReportMetric(float64(configs), "configs/op")
}

// BenchmarkPlanner_ParallelVsSerial routes the same 16-net SoC workload
// with 1, 2, 4, and 8 workers over one shared grid and Elmore model. On a
// multi-core host the 4-worker row shows the batch-routing speedup; on any
// host the rows confirm the parallel engine pays no correctness or setup
// penalty over the serial loop.
//
// Besides the configs/op effort count, each row fingerprints the routed
// answer — total registers and summed latency across the batch — so
// cmd/benchcheck's gate catches a batch-path result drift (any fingerprint
// delta fails) separately from an effort regression (>5% configs/op).
func BenchmarkPlanner_ParallelVsSerial(b *testing.B) {
	pl, specs, err := bench.SoCNetWorkload(0.5, 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var configs, regs int
			var lat float64
			for n := 0; n < b.N; n++ {
				plan, err := pl.RunParallel(context.Background(), workers, specs)
				if err != nil {
					b.Fatal(err)
				}
				configs = plan.Stats.TotalConfigs
				regs, lat = 0, 0
				for i := range plan.Nets {
					if plan.Nets[i].Err != nil {
						b.Fatal(plan.Nets[i].Err)
					}
					regs += plan.Nets[i].Registers
					lat += plan.Nets[i].LatencyPS
				}
			}
			b.ReportMetric(float64(configs), "configs/op")
			b.ReportMetric(float64(regs), "registers/op")
			b.ReportMetric(lat, "latency_ps")
		})
	}
}
